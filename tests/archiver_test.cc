#include "db/archiver.h"

#include <gtest/gtest.h>

#include "db/track_trace.h"

namespace sase {
namespace db {
namespace {

class ArchiverTest : public ::testing::Test {
 protected:
  Database database_;
  Archiver archiver_{&database_};
};

TEST_F(ArchiverTest, CreatesSchema) {
  EXPECT_NE(database_.GetTable("location_history"), nullptr);
  EXPECT_NE(database_.GetTable("containment_history"), nullptr);
  EXPECT_NE(database_.GetTable("area_directory"), nullptr);
}

TEST_F(ArchiverTest, FirstLocationOpensStay) {
  ASSERT_TRUE(archiver_.UpdateLocation("T1", 3, 100).ok());
  Table* table = database_.GetTable("location_history");
  EXPECT_EQ(table->row_count(), 1u);
  const Row* row = table->Get(1);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[0].AsString(), "T1");
  EXPECT_EQ((*row)[1].AsInt(), 3);
  EXPECT_EQ((*row)[2].AsInt(), 100);
  EXPECT_TRUE((*row)[3].is_null());  // TimeOut open
}

TEST_F(ArchiverTest, LocationChangeClosesAndOpens) {
  // The paper: "_updateLocation first sets the TimeOut attribute of the
  // current location ... then creates a tuple for the new location with the
  // TimeIn attribute also set to the value of y.Timestamp."
  ASSERT_TRUE(archiver_.UpdateLocation("T1", 3, 100).ok());
  ASSERT_TRUE(archiver_.UpdateLocation("T1", 5, 200).ok());
  TrackTrace trace(&database_);
  auto history = trace.LocationHistory("T1");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].where.AsInt(), 3);
  EXPECT_EQ(history[0].time_in, 100);
  EXPECT_EQ(history[0].time_out, 200);  // closed at the move's timestamp
  EXPECT_EQ(history[1].where.AsInt(), 5);
  EXPECT_EQ(history[1].time_in, 200);
  EXPECT_TRUE(history[1].current());
}

TEST_F(ArchiverTest, SameLocationIsNoOp) {
  ASSERT_TRUE(archiver_.UpdateLocation("T1", 3, 100).ok());
  ASSERT_TRUE(archiver_.UpdateLocation("T1", 3, 150).ok());
  EXPECT_EQ(database_.GetTable("location_history")->row_count(), 1u);
}

TEST_F(ArchiverTest, IndependentTags) {
  ASSERT_TRUE(archiver_.UpdateLocation("T1", 1, 10).ok());
  ASSERT_TRUE(archiver_.UpdateLocation("T2", 2, 20).ok());
  ASSERT_TRUE(archiver_.UpdateLocation("T1", 3, 30).ok());
  TrackTrace trace(&database_);
  EXPECT_EQ(trace.CurrentLocation("T1")->where.AsInt(), 3);
  EXPECT_EQ(trace.CurrentLocation("T2")->where.AsInt(), 2);
}

TEST_F(ArchiverTest, ContainmentUpdates) {
  ASSERT_TRUE(archiver_.UpdateContainment("T1", "BOX1", 10).ok());
  ASSERT_TRUE(archiver_.UpdateContainment("T1", "BOX2", 50).ok());
  TrackTrace trace(&database_);
  auto history = trace.ContainmentHistory("T1");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].where.AsString(), "BOX1");
  EXPECT_EQ(history[0].time_out, 50);
  EXPECT_EQ(history[1].where.AsString(), "BOX2");
  EXPECT_TRUE(history[1].current());
  EXPECT_EQ(archiver_.containment_updates(), 2u);
}

TEST_F(ArchiverTest, RetrieveLocationDescription) {
  ASSERT_TRUE(archiver_.DescribeArea(4, "the leftmost door").ok());
  EXPECT_EQ(archiver_.RetrieveLocation(4), "the leftmost door");
  EXPECT_EQ(archiver_.RetrieveLocation(9), "area 9");  // unknown -> fallback
  // Re-describing overwrites.
  ASSERT_TRUE(archiver_.DescribeArea(4, "the rightmost door").ok());
  EXPECT_EQ(archiver_.RetrieveLocation(4), "the rightmost door");
}

TEST_F(ArchiverTest, RegisteredFunctions) {
  FunctionRegistry registry;
  ASSERT_TRUE(archiver_.RegisterFunctions(&registry).ok());
  ASSERT_TRUE(archiver_.DescribeArea(2, "south exit").ok());

  auto loc = registry.Invoke("_retrieveLocation", {Value(2)});
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc.value().AsString(), "south exit");

  auto update =
      registry.Invoke("_updateLocation", {Value("T1"), Value(7), Value(10)});
  ASSERT_TRUE(update.ok());
  TrackTrace trace(&database_);
  EXPECT_EQ(trace.CurrentLocation("T1")->where.AsInt(), 7);

  auto contain = registry.Invoke("_updateContainment",
                                 {Value("T1"), Value("BOX"), Value(12)});
  ASSERT_TRUE(contain.ok());
  EXPECT_EQ(trace.CurrentContainment("T1")->where.AsString(), "BOX");

  // Names are case-insensitive like all registry functions.
  EXPECT_TRUE(registry.Has("_RETRIEVELOCATION"));
  // Arity and types validated.
  EXPECT_FALSE(registry.Invoke("_retrieveLocation", {}).ok());
  EXPECT_FALSE(registry.Invoke("_updateLocation",
                               {Value(1), Value(2), Value(3)}).ok());
}

}  // namespace
}  // namespace db
}  // namespace sase
