// Unit tests for the durable checkpoint subsystem's building blocks: the
// write-ahead event journal (framing, CRC validation, segment rotation,
// torn-tail handling), the snapshot/manifest files, and the automatic
// checkpoint policy. End-to-end kill-and-recover coverage lives in
// recovery_test.cc.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "checkpoint/checkpoint_policy.h"
#include "checkpoint/journal.h"
#include "checkpoint/snapshot.h"
#include "core/catalog.h"
#include "core/event.h"
#include "db/database.h"
#include "util/crc32.h"

namespace sase {
namespace checkpoint {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/sase_checkpoint_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

EventPtr MakeEvent(const Catalog& catalog, const std::string& type,
                   Timestamp ts, SequenceNumber seq, const std::string& tag) {
  EventBuilder builder(catalog, type);
  auto event =
      builder.Set("TagId", tag).Set("AreaId", 2).Set("ProductName", "Soap")
          .Build(ts, seq);
  EXPECT_TRUE(event.ok()) << event.status().ToString();
  return event.value();
}

// --- journal ----------------------------------------------------------------

TEST(EventJournalTest, RoundTripsEveryRecordKind) {
  Catalog catalog = Catalog::RetailDemo();
  std::string dir = FreshDir("roundtrip");
  auto journal = EventJournal::Open(dir, /*snapshot=*/3, /*start_segment=*/0,
                                    /*rotate_bytes=*/1 << 20,
                                    FsyncPolicy::kNever);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EventJournal& writer = *journal.value();

  EventPtr e1 = MakeEvent(catalog, "SHELF_READING", 10, 1, "TAG|1\nx");
  EventPtr e2 = MakeEvent(catalog, "EXIT_READING", 12, 2, "TAG2");
  ASSERT_TRUE(writer.AppendEvent("", *e1).ok());
  ASSERT_TRUE(writer.AppendEvent("sensors", *e2).ok());
  ASSERT_TRUE(writer.AppendOutputMark(41, 7).ok());
  ASSERT_TRUE(writer.AppendRegister(true, "loc", "EVENT ANY(...)").ok());
  ASSERT_TRUE(writer.AppendFlush().ok());
  EXPECT_EQ(writer.records_written(), 5u);

  auto scan = ReadJournal(dir, 3);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_FALSE(scan.value().truncated) << scan.value().truncation_reason;
  ASSERT_EQ(scan.value().records.size(), 5u);
  EXPECT_EQ(scan.value().next_segment, 1u);

  const auto& records = scan.value().records;
  EXPECT_EQ(records[0].kind, JournalRecord::Kind::kEvent);
  EXPECT_EQ(records[0].type, e1->type());
  EXPECT_EQ(records[0].timestamp, 10);
  EXPECT_EQ(records[0].seq, 1u);
  ASSERT_EQ(records[0].values.size(), e1->attribute_count());
  EXPECT_EQ(records[0].values[0].AsString(), "TAG|1\nx");

  EXPECT_EQ(records[1].kind, JournalRecord::Kind::kStreamEvent);
  EXPECT_EQ(records[1].stream, "sensors");
  EXPECT_EQ(records[1].type, e2->type());

  EXPECT_EQ(records[2].kind, JournalRecord::Kind::kOutputMark);
  EXPECT_EQ(records[2].delivered_runtime, 41u);
  EXPECT_EQ(records[2].delivered_serial, 7u);

  EXPECT_EQ(records[3].kind, JournalRecord::Kind::kRegister);
  EXPECT_TRUE(records[3].archiving);
  EXPECT_EQ(records[3].name, "loc");
  EXPECT_EQ(records[3].text, "EVENT ANY(...)");

  EXPECT_EQ(records[4].kind, JournalRecord::Kind::kFlush);
}

TEST(EventJournalTest, RotatesSegmentsAndReadsAcrossThem) {
  Catalog catalog = Catalog::RetailDemo();
  std::string dir = FreshDir("rotation");
  auto journal = EventJournal::Open(dir, 1, 0, /*rotate_bytes=*/256,
                                    FsyncPolicy::kNever);
  ASSERT_TRUE(journal.ok());
  constexpr int kRecords = 40;
  for (int i = 0; i < kRecords; ++i) {
    EventPtr event = MakeEvent(catalog, "SHELF_READING", i, i, "TAG");
    ASSERT_TRUE(journal.value()->AppendEvent("", *event).ok());
  }
  EXPECT_GT(journal.value()->rotations(), 2u);

  auto scan = ReadJournal(dir, 1);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan.value().truncated);
  EXPECT_EQ(scan.value().records.size(), static_cast<size_t>(kRecords));
  EXPECT_GT(scan.value().segments_read, 3u);
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(scan.value().records[static_cast<size_t>(i)].timestamp, i);
  }

  // A different epoch sees nothing.
  auto other = ReadJournal(dir, 2);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other.value().records.empty());
  EXPECT_EQ(other.value().next_segment, 0u);
}

TEST(EventJournalTest, DetectsCorruptAndTornTails) {
  Catalog catalog = Catalog::RetailDemo();
  std::string dir = FreshDir("corrupt");
  {
    auto journal = EventJournal::Open(dir, 1, 0, 1 << 20, FsyncPolicy::kNever);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 10; ++i) {
      EventPtr event = MakeEvent(catalog, "SHELF_READING", i, i, "TAG");
      ASSERT_TRUE(journal.value()->AppendEvent("", *event).ok());
    }
  }
  std::string path = dir + "/" + SegmentFileName(1, 0);
  auto size = std::filesystem::file_size(path);

  // Flip one byte inside the last record's payload: CRC must catch it and
  // the scan must keep everything before the damage.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(size) - 3);
    file.put('\xFF');
  }
  auto scan = ReadJournal(dir, 1);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().truncated);
  EXPECT_NE(scan.value().truncation_reason.find("CRC"), std::string::npos);
  EXPECT_EQ(scan.value().records.size(), 9u);

  // Tear the tail mid-record (crash while appending): same clean stop.
  std::filesystem::resize_file(path, size - 5);
  scan = ReadJournal(dir, 1);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().truncated);
  EXPECT_NE(scan.value().truncation_reason.find("torn"), std::string::npos);
  EXPECT_EQ(scan.value().records.size(), 9u);
  EXPECT_EQ(scan.value().truncated_segment, 0u);
  EXPECT_GT(scan.value().truncated_offset, 0u);

  // Repair cuts the torn tail out: journaling resumes at the next segment
  // and a rescan is clean through both the old prefix and new appends —
  // without the repair, the next scan would stop at the old crash point
  // and hide every record journaled after recovery.
  uint64_t resume = RepairJournal(dir, 1, scan.value());
  EXPECT_EQ(resume, 1u);
  {
    auto journal = EventJournal::Open(dir, 1, resume, 1 << 20,
                                      FsyncPolicy::kNever);
    ASSERT_TRUE(journal.ok());
    EventPtr event = MakeEvent(catalog, "EXIT_READING", 99, 99, "TAG");
    ASSERT_TRUE(journal.value()->AppendEvent("", *event).ok());
  }
  scan = ReadJournal(dir, 1);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan.value().truncated) << scan.value().truncation_reason;
  ASSERT_EQ(scan.value().records.size(), 10u);
  EXPECT_EQ(scan.value().records[9].timestamp, 99);
}

TEST(EventJournalTest, StaleEpochGarbageCollection) {
  std::string dir = FreshDir("gc");
  for (uint64_t epoch : {1u, 2u, 3u}) {
    auto journal = EventJournal::Open(dir, epoch, 0, 1 << 20,
                                      FsyncPolicy::kNever);
    ASSERT_TRUE(journal.ok());
  }
  RemoveStaleJournals(dir, 3);
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + SegmentFileName(1, 0)));
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + SegmentFileName(2, 0)));
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + SegmentFileName(3, 0)));
}

TEST(EventJournalTest, AckCursorRoundTripsAndCoalesces) {
  std::string dir = FreshDir("ack_cursor");
  {
    auto journal = EventJournal::Open(dir, 5, 0, 1 << 20, FsyncPolicy::kNever);
    ASSERT_TRUE(journal.ok());
    EventJournal& writer = *journal.value();
    writer.set_ack_commit_interval(4);

    // Three acks stay buffered: nothing hits the journal yet.
    ASSERT_TRUE(writer.AppendAckCursor(1, 0).ok());
    ASSERT_TRUE(writer.AppendAckCursor(2, 0).ok());
    ASSERT_TRUE(writer.AppendAckCursor(3, 1).ok());
    EXPECT_EQ(writer.pending_acks(), 3u);
    EXPECT_EQ(writer.records_written(), 0u);
    EXPECT_EQ(writer.ack_commits(), 0u);

    // The fourth ack crosses the interval: one coalesced record carrying
    // only the latest cumulative values.
    ASSERT_TRUE(writer.AppendAckCursor(4, 2).ok());
    EXPECT_EQ(writer.pending_acks(), 0u);
    EXPECT_EQ(writer.records_written(), 1u);
    EXPECT_EQ(writer.ack_commits(), 1u);

    // An explicit CommitAcks() flushes a partial batch...
    ASSERT_TRUE(writer.AppendAckCursor(6, 2).ok());
    ASSERT_TRUE(writer.CommitAcks().ok());
    EXPECT_EQ(writer.records_written(), 2u);
    EXPECT_EQ(writer.ack_commits(), 2u);
    // ...and is a no-op when the buffer is empty.
    ASSERT_TRUE(writer.CommitAcks().ok());
    EXPECT_EQ(writer.records_written(), 2u);

    // This last ack is still buffered when the journal is destroyed: the
    // destructor deliberately does NOT commit (that is the simulated
    // ack-to-fsync crash window), so it must not survive the scan below.
    ASSERT_TRUE(writer.AppendAckCursor(9, 3).ok());
    EXPECT_EQ(writer.pending_acks(), 1u);
  }

  auto scan = ReadJournal(dir, 5);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_FALSE(scan.value().truncated);
  ASSERT_EQ(scan.value().records.size(), 2u);
  EXPECT_EQ(scan.value().records[0].kind, JournalRecord::Kind::kAckCursor);
  EXPECT_EQ(scan.value().records[0].acked_runtime, 4u);
  EXPECT_EQ(scan.value().records[0].acked_serial, 2u);
  EXPECT_EQ(scan.value().records[1].kind, JournalRecord::Kind::kAckCursor);
  EXPECT_EQ(scan.value().records[1].acked_runtime, 6u);
  EXPECT_EQ(scan.value().records[1].acked_serial, 2u);
}

// --- snapshot + manifest ----------------------------------------------------

TEST(SnapshotTest, RoundTripsStateAndDatabase) {
  Catalog catalog = Catalog::RetailDemo();
  std::string dir = FreshDir("snapshot");

  db::Database database;
  auto table = database.CreateTable(
      "events", {{"TagId", ValueType::kString}, {"Timestamp", ValueType::kInt}});
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table.value()->Insert({Value("TAG|x"), Value(int64_t{7})}).ok());

  SystemSnapshot snap;
  snap.snapshot_id = 2;
  snap.shard_count = 8;
  snap.partition_key = "TagId";
  snap.events_dispatched = 123;
  snap.delivered_runtime = 45;
  snap.delivered_serial = 6;
  snap.any_routed = true;
  snap.routed_stream = 1;
  snap.multi_routed = true;
  for (size_t i = 0; i < catalog.type_count(); ++i) {
    snap.catalog_types.push_back(catalog.schema(static_cast<EventTypeId>(i)).name());
  }
  snap.streams.push_back(SnapshotStream{0, "", 90, 110, 100});
  snap.streams.push_back(SnapshotStream{1, "sensors", 80, 15, 23});
  SnapshotQuery query;
  query.id = 4;
  query.runtime_hosted = true;
  query.registered_at = 17;
  query.options.push_predicates = false;
  query.name = "shop|lift";
  query.text = "EVENT SHELF_READING s\nRETURN s.TagId";
  snap.queries.push_back(query);
  snap.window.push_back(SnapshotWindowEvent{
      0, 99, MakeEvent(catalog, "SHELF_READING", 88, 42, "TAG1")});

  ASSERT_TRUE(WriteSnapshot(dir, snap, database).ok());
  auto manifest = ReadManifest(dir);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest.value(), 2u);

  db::Database restored_db;
  auto read = ReadSnapshot(dir, 2, &restored_db);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const SystemSnapshot& restored = read.value();
  EXPECT_EQ(restored.shard_count, 8);
  EXPECT_EQ(restored.partition_key, "TagId");
  EXPECT_EQ(restored.events_dispatched, 123u);
  EXPECT_EQ(restored.delivered_runtime, 45u);
  EXPECT_EQ(restored.delivered_serial, 6u);
  EXPECT_TRUE(restored.any_routed);
  EXPECT_EQ(restored.routed_stream, 1u);
  EXPECT_TRUE(restored.multi_routed);
  EXPECT_EQ(restored.catalog_types, snap.catalog_types);
  ASSERT_EQ(restored.streams.size(), 2u);
  EXPECT_EQ(restored.streams[1].name, "sensors");
  EXPECT_EQ(restored.streams[1].clock, 80);
  EXPECT_EQ(restored.streams[1].last_seq, 15u);
  EXPECT_EQ(restored.streams[1].events, 23u);
  ASSERT_EQ(restored.queries.size(), 1u);
  EXPECT_EQ(restored.queries[0].id, 4);
  EXPECT_TRUE(restored.queries[0].runtime_hosted);
  EXPECT_FALSE(restored.queries[0].archiving);
  EXPECT_EQ(restored.queries[0].registered_at, 17u);
  EXPECT_FALSE(restored.queries[0].options.push_predicates);
  EXPECT_TRUE(restored.queries[0].options.push_window);
  EXPECT_EQ(restored.queries[0].name, "shop|lift");
  EXPECT_EQ(restored.queries[0].text, "EVENT SHELF_READING s\nRETURN s.TagId");
  ASSERT_EQ(restored.window.size(), 1u);
  EXPECT_EQ(restored.window[0].global, 99u);
  EXPECT_EQ(restored.window[0].event->timestamp(), 88);
  EXPECT_EQ(restored.window[0].event->seq(), 42u);
  EXPECT_EQ(restored.window[0].event->attribute(0).AsString(), "TAG1");

  const db::Table* events = restored_db.GetTable("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->row_count(), 1u);

  // A newer snapshot supersedes: manifest repoints, GC removes the old one.
  snap.snapshot_id = 3;
  ASSERT_TRUE(WriteSnapshot(dir, snap, database).ok());
  RemoveStaleSnapshots(dir, 3);
  EXPECT_EQ(ReadManifest(dir).value(), 3u);
  EXPECT_FALSE(std::filesystem::exists(dir + "/snap-2"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/snap-3"));
}

TEST(SnapshotTest, EngineStateSectionsRoundTrip) {
  Catalog catalog = Catalog::RetailDemo();
  std::string dir = FreshDir("engine_sections");
  db::Database database;

  SystemSnapshot snap;
  snap.snapshot_id = 1;
  for (size_t i = 0; i < catalog.type_count(); ++i) {
    snap.catalog_types.push_back(catalog.schema(static_cast<EventTypeId>(i)).name());
  }
  // Payloads with framing-hostile bytes: '|', newlines, binary-ish data.
  snap.engine_state.push_back(
      EngineStateSection{"plan", "shard-0", 4, 1, "SS 1|2|3\nSI 0|7\n"});
  snap.engine_state.push_back(
      EngineStateSection{"engine", "broadcast", 0, 1, "EP 42\n"});
  snap.engine_state.push_back(EngineStateSection{
      "future-kind", "serial", 9, 3, std::string("\x01|\xff\nEND\n", 8)});

  ASSERT_TRUE(WriteSnapshot(dir, snap, database).ok());
  auto read = ReadSnapshot(dir, 1, nullptr);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().format, kSnapshotFormatV4);
  ASSERT_EQ(read.value().engine_state.size(), 3u);
  EXPECT_EQ(read.value().engine_state[0].kind, "plan");
  EXPECT_EQ(read.value().engine_state[0].host, "shard-0");
  EXPECT_EQ(read.value().engine_state[0].query, 4);
  EXPECT_EQ(read.value().engine_state[0].payload, "SS 1|2|3\nSI 0|7\n");
  EXPECT_EQ(read.value().engine_state[1].kind, "engine");
  EXPECT_EQ(read.value().engine_state[1].payload, "EP 42\n");
  // A section of unknown kind survives the read (skippable framing); the
  // consumer decides to ignore it.
  EXPECT_EQ(read.value().engine_state[2].kind, "future-kind");
  EXPECT_EQ(read.value().engine_state[2].version, 3u);
  EXPECT_EQ(read.value().engine_state[2].payload.size(), 8u);
}

TEST(SnapshotTest, CorruptOrTruncatedEngineStateSectionIsAHardError) {
  Catalog catalog = Catalog::RetailDemo();
  db::Database database;
  SystemSnapshot snap;
  snap.snapshot_id = 1;
  for (size_t i = 0; i < catalog.type_count(); ++i) {
    snap.catalog_types.push_back(catalog.schema(static_cast<EventTypeId>(i)).name());
  }
  snap.engine_state.push_back(
      EngineStateSection{"plan", "serial", 7, 1, "TS 5|0\nTA 0|5|D:2.5\n"});

  {
    // Flip one payload byte: the section's CRC must catch it, the error
    // must name the section, and ReadSnapshot must fail outright — no
    // partial restore material is handed to the caller.
    std::string dir = FreshDir("engine_corrupt");
    ASSERT_TRUE(WriteSnapshot(dir, snap, database).ok());
    std::string path = dir + "/snap-1/engine.sase";
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(-8, std::ios::end);  // inside the payload of the section
    file.put('X');
    file.close();
    auto read = ReadSnapshot(dir, 1, nullptr);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kParseError);
    EXPECT_NE(read.status().message().find("query #7"), std::string::npos)
        << read.status().ToString();
    EXPECT_NE(read.status().message().find("CRC"), std::string::npos)
        << read.status().ToString();
  }
  {
    // Truncate mid-payload: clean error, not garbage state.
    std::string dir = FreshDir("engine_truncated");
    ASSERT_TRUE(WriteSnapshot(dir, snap, database).ok());
    std::string path = dir + "/snap-1/engine.sase";
    auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 10);
    auto read = ReadSnapshot(dir, 1, nullptr);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kParseError);
    EXPECT_NE(read.status().message().find("truncated"), std::string::npos)
        << read.status().ToString();
  }
}

TEST(SnapshotTest, ManifestFormatNegotiation) {
  db::Database database;
  SystemSnapshot snap;
  snap.snapshot_id = 1;
  std::string dir = FreshDir("format");
  ASSERT_TRUE(WriteSnapshot(dir, snap, database).ok());

  // The writer stamps the current format; the reader accepts it.
  EXPECT_TRUE(ReadManifest(dir).ok());

  // A manifest claiming a future format is refused with a clear error
  // instead of misreading the directory.
  {
    std::ofstream out(dir + "/MANIFEST");
    out << "SASE-MANIFEST v1\nsnapshot 1\nformat 99\n";
  }
  auto manifest = ReadManifest(dir);
  ASSERT_FALSE(manifest.ok());
  EXPECT_EQ(manifest.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(manifest.status().message().find("format 99"), std::string::npos)
      << manifest.status().ToString();

  // A format-less manifest (v1 writer) still reads.
  {
    std::ofstream out(dir + "/MANIFEST");
    out << "SASE-MANIFEST v1\nsnapshot 1\n";
  }
  EXPECT_TRUE(ReadManifest(dir).ok());
}

TEST(SnapshotTest, AckedCursorRoundTripsAndPreCursorSnapshotsStillRead) {
  db::Database database;
  SystemSnapshot snap;
  snap.snapshot_id = 2;
  snap.catalog_types.push_back("SHELF_READING");
  snap.delivered_runtime = 12;
  snap.delivered_serial = 5;
  snap.acked_runtime = 9;
  snap.acked_serial = 5;
  std::string dir = FreshDir("acked");
  ASSERT_TRUE(WriteSnapshot(dir, snap, database).ok());

  auto read = ReadSnapshot(dir, 2, nullptr);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().format, kSnapshotFormatV4);
  EXPECT_TRUE(read.value().has_acked);
  EXPECT_EQ(read.value().acked_runtime, 9u);
  EXPECT_EQ(read.value().acked_serial, 5u);

  // Downgrade the state file to a pre-cursor (v2) snapshot on disk: v2
  // header, no ACKED line. The reader must still accept it and report the
  // cursor as absent (has_acked false) rather than inventing "acked 0|0".
  std::string state_path = dir + "/snap-2/state.sase";
  std::ifstream in(state_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string text = buffer.str();
  size_t header = text.find("SASE-CHECKPOINT v4");
  ASSERT_NE(header, std::string::npos);
  text.replace(header, 18, "SASE-CHECKPOINT v2");
  size_t acked_line = text.find("ACKED ");
  ASSERT_NE(acked_line, std::string::npos);
  text.erase(acked_line, text.find('\n', acked_line) - acked_line + 1);
  {
    std::ofstream out(state_path);
    out << text;
  }

  auto old_read = ReadSnapshot(dir, 2, nullptr);
  ASSERT_TRUE(old_read.ok()) << old_read.status().ToString();
  EXPECT_EQ(old_read.value().format, kSnapshotFormatV2);
  EXPECT_FALSE(old_read.value().has_acked);
  EXPECT_EQ(old_read.value().delivered_runtime, 12u);
}

TEST(SnapshotTest, MissingManifestIsNotFound) {
  std::string dir = FreshDir("nomanifest");
  auto manifest = ReadManifest(dir);
  EXPECT_FALSE(manifest.ok());
  EXPECT_EQ(manifest.status().code(), StatusCode::kNotFound);
}

// --- policy -----------------------------------------------------------------

TEST(CheckpointPolicyTest, IntervalAndSizeThresholds) {
  CheckpointConfig config;
  config.checkpoint_interval_events = 100;
  config.checkpoint_journal_bytes = 4096;
  CheckpointPolicy policy(config);

  EXPECT_EQ(policy.Evaluate({50, 0}), CheckpointDecision::kHold);
  EXPECT_EQ(policy.Evaluate({99, 0}), CheckpointDecision::kHold);
  EXPECT_EQ(policy.Evaluate({100, 0}), CheckpointDecision::kCheckpoint);
  // Between the decision and NoteCheckpoint the policy must not re-fire on
  // every event (the system is busy writing the snapshot).
  EXPECT_EQ(policy.Evaluate({101, 0}), CheckpointDecision::kHold);
  policy.NoteCheckpoint();
  EXPECT_EQ(policy.Evaluate({5, 0}), CheckpointDecision::kHold);
  // The size trigger fires independently of the event interval.
  EXPECT_EQ(policy.Evaluate({6, 5000}), CheckpointDecision::kCheckpoint);
  policy.NoteCheckpoint();
  EXPECT_EQ(policy.checks(), 6u);
  EXPECT_EQ(policy.decisions(), 2u);
  EXPECT_NE(policy.Describe().find("interval=100"), std::string::npos);
}

TEST(CheckpointPolicyTest, ManualOnlyNeverFires) {
  CheckpointPolicy policy(CheckpointConfig{});
  EXPECT_EQ(policy.Evaluate({1u << 20, 1u << 30}), CheckpointDecision::kHold);
  EXPECT_NE(policy.Describe().find("manual only"), std::string::npos);
}

// --- crc --------------------------------------------------------------------

TEST(Crc32Test, MatchesKnownVectorAndChains) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Incremental computation chains through the seed.
  uint32_t prefix = Crc32("12345", 5);
  EXPECT_EQ(Crc32("6789", 4, prefix), Crc32("123456789", 9));
  EXPECT_NE(Crc32("123456789", 9), Crc32("123456780", 9));
}

}  // namespace
}  // namespace checkpoint
}  // namespace sase
