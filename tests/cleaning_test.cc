#include "cleaning/pipeline.h"

#include <gtest/gtest.h>

#include "rfid/tag.h"

namespace sase {
namespace {

/// ReadingSink that records everything it receives.
class ReadingCollector : public ReadingSink {
 public:
  void OnReading(const RawReading& reading) override {
    readings.push_back(reading);
  }
  void OnFlush() override { flushed = true; }
  std::vector<RawReading> readings;
  bool flushed = false;
};

RawReading MakeReading(const std::string& tag, int reader, int64_t t,
                       bool synthesized = false) {
  RawReading reading;
  reading.tag_id = tag;
  reading.reader_id = reader;
  reading.raw_time = t;
  reading.synthesized = synthesized;
  return reading;
}

std::string GoodTag(int n) { return MakeEpc(n); }

TEST(AnomalyFilterTest, PassesWellFormedReadings) {
  ReadingCollector collector;
  AnomalyFilter filter({.tag_id_length = 24, .valid_readers = {0, 1}}, &collector);
  filter.OnReading(MakeReading(GoodTag(1), 0, 5));
  EXPECT_EQ(collector.readings.size(), 1u);
  EXPECT_EQ(filter.stats().readings_in, 1u);
}

TEST(AnomalyFilterTest, DropsTruncatedIds) {
  ReadingCollector collector;
  AnomalyFilter filter({.tag_id_length = 24, .valid_readers = {}}, &collector);
  filter.OnReading(MakeReading(GoodTag(1).substr(0, 10), 0, 5));
  EXPECT_TRUE(collector.readings.empty());
  EXPECT_EQ(filter.stats().dropped_truncated, 1u);
}

TEST(AnomalyFilterTest, DropsSpuriousIds) {
  ReadingCollector collector;
  AnomalyFilter filter({.tag_id_length = 24, .valid_readers = {0}}, &collector);
  filter.OnReading(MakeReading("Z" + GoodTag(1).substr(1), 0, 5));  // non-hex
  filter.OnReading(MakeReading(GoodTag(1) + "FF", 0, 5));           // overlong
  filter.OnReading(MakeReading(GoodTag(1), 9, 5));                  // bad reader
  EXPECT_TRUE(collector.readings.empty());
  EXPECT_EQ(filter.stats().dropped_spurious, 3u);
}

TEST(TemporalSmoothingTest, FillsGapsWithinWindow) {
  ReadingCollector collector;
  TemporalSmoothing smoothing({.window = 5, .sampling_interval = 1}, &collector);
  smoothing.OnReading(MakeReading(GoodTag(1), 0, 10));
  smoothing.OnReading(MakeReading(GoodTag(1), 0, 13));  // missed 11, 12
  ASSERT_EQ(collector.readings.size(), 4u);
  EXPECT_EQ(collector.readings[0].raw_time, 10);
  EXPECT_EQ(collector.readings[1].raw_time, 11);
  EXPECT_TRUE(collector.readings[1].synthesized);
  EXPECT_EQ(collector.readings[2].raw_time, 12);
  EXPECT_TRUE(collector.readings[2].synthesized);
  EXPECT_EQ(collector.readings[3].raw_time, 13);
  EXPECT_FALSE(collector.readings[3].synthesized);
  EXPECT_EQ(smoothing.stats().readings_filled, 2u);
}

TEST(TemporalSmoothingTest, DoesNotBridgeBeyondWindow) {
  ReadingCollector collector;
  TemporalSmoothing smoothing({.window = 3, .sampling_interval = 1}, &collector);
  smoothing.OnReading(MakeReading(GoodTag(1), 0, 10));
  smoothing.OnReading(MakeReading(GoodTag(1), 0, 20));  // gap 10 > window 3
  EXPECT_EQ(collector.readings.size(), 2u);
  EXPECT_EQ(smoothing.stats().readings_filled, 0u);
}

TEST(TemporalSmoothingTest, TracksTagReaderPairsIndependently) {
  ReadingCollector collector;
  TemporalSmoothing smoothing({.window = 5, .sampling_interval = 1}, &collector);
  smoothing.OnReading(MakeReading(GoodTag(1), 0, 10));
  smoothing.OnReading(MakeReading(GoodTag(1), 1, 12));  // other reader: no gap fill
  smoothing.OnReading(MakeReading(GoodTag(2), 0, 12));  // other tag: no gap fill
  EXPECT_EQ(smoothing.stats().readings_filled, 0u);
}

TEST(TimeConversionTest, ConvertsRawUnitsToTicks) {
  ReadingCollector collector;
  TimeConversion conversion({.epoch = 1000, .raw_units_per_tick = 100},
                            &collector);
  conversion.OnReading(MakeReading(GoodTag(1), 0, 1500));
  ASSERT_EQ(collector.readings.size(), 1u);
  EXPECT_EQ(collector.readings[0].raw_time, 5);
}

TEST(DeduplicationTest, DropsSameTickDuplicatesAcrossReaders) {
  ReadingCollector collector;
  // Readers 0 and 1 watch the same logical area 7 (redundant setup).
  Deduplication dedup({.reader_to_area = {{0, 7}, {1, 7}}, .horizon = 0},
                      &collector);
  dedup.OnReading(MakeReading(GoodTag(1), 0, 5));
  dedup.OnReading(MakeReading(GoodTag(1), 1, 5));  // duplicate via reader 1
  ASSERT_EQ(collector.readings.size(), 1u);
  EXPECT_EQ(collector.readings[0].reader_id, 7);  // rewritten to the area
  EXPECT_EQ(dedup.stats().dropped_duplicates, 1u);
}

TEST(DeduplicationTest, LaterReadingsPassAfterHorizon) {
  ReadingCollector collector;
  Deduplication dedup({.reader_to_area = {{0, 7}}, .horizon = 2}, &collector);
  dedup.OnReading(MakeReading(GoodTag(1), 0, 5));
  dedup.OnReading(MakeReading(GoodTag(1), 0, 6));  // within horizon: dropped
  dedup.OnReading(MakeReading(GoodTag(1), 0, 9));  // beyond horizon: passes
  EXPECT_EQ(collector.readings.size(), 2u);
}

TEST(DeduplicationTest, UnmappedReaderDropped) {
  ReadingCollector collector;
  Deduplication dedup({.reader_to_area = {{0, 7}}, .horizon = 0}, &collector);
  dedup.OnReading(MakeReading(GoodTag(1), 5, 5));
  EXPECT_TRUE(collector.readings.empty());
  EXPECT_EQ(dedup.stats().dropped_unmapped_reader, 1u);
}

TEST(EventGenerationTest, ProducesTypedEventsWithOnsMetadata) {
  Catalog catalog = Catalog::RetailDemo();
  VectorSink sink;
  StreamSource source(&sink);
  OnsResolver ons = [](const std::string& tag) -> std::optional<ProductInfo> {
    if (tag == MakeEpc(1)) return ProductInfo{"Razor", "2026-12", true};
    return std::nullopt;
  };
  EventGeneration generation({.area_to_event_type = {{0, "SHELF_READING"}}},
                             &catalog, ons, &source);
  generation.OnReading(MakeReading(MakeEpc(1), 0, 9));
  ASSERT_EQ(sink.events().size(), 1u);
  const EventPtr& event = sink.events()[0];
  EXPECT_EQ(event->type(), catalog.FindType("SHELF_READING").value());
  EXPECT_EQ(event->timestamp(), 9);
  EXPECT_EQ(event->attribute(0).AsString(), MakeEpc(1));
  EXPECT_EQ(event->attribute(2).AsString(), "Razor");
}

TEST(EventGenerationTest, UnknownTagPolicy) {
  Catalog catalog = Catalog::RetailDemo();
  VectorSink sink;
  StreamSource source(&sink);
  OnsResolver no_ons = [](const std::string&) { return std::nullopt; };
  {
    EventGeneration keep({.area_to_event_type = {{0, "SHELF_READING"}}},
                         &catalog, no_ons, &source);
    keep.OnReading(MakeReading(MakeEpc(5), 0, 1));
    ASSERT_EQ(sink.events().size(), 1u);
    EXPECT_EQ(sink.events()[0]->attribute(2).AsString(), "UNKNOWN");
  }
  sink.Clear();
  {
    EventGeneration drop({.area_to_event_type = {{0, "SHELF_READING"}},
                          .drop_unknown_tags = true},
                         &catalog, no_ons, &source);
    drop.OnReading(MakeReading(MakeEpc(5), 0, 2));
    EXPECT_TRUE(sink.events().empty());
    EXPECT_EQ(drop.stats().dropped_unknown_tag, 1u);
  }
}

TEST(EventGenerationTest, UnmappedAreaDropped) {
  Catalog catalog = Catalog::RetailDemo();
  VectorSink sink;
  StreamSource source(&sink);
  EventGeneration generation({.area_to_event_type = {{0, "SHELF_READING"}}},
                             &catalog, nullptr, &source);
  generation.OnReading(MakeReading(MakeEpc(1), 3, 1));
  EXPECT_TRUE(sink.events().empty());
  EXPECT_EQ(generation.stats().dropped_unmapped_area, 1u);
}

TEST(PipelineTest, EndToEndCleaning) {
  Catalog catalog = Catalog::RetailDemo();
  VectorSink sink;
  CleaningPipeline::Config config;
  config.anomaly.valid_readers = {0, 1};
  config.smoothing.window = 3;
  config.smoothing.sampling_interval = 1;
  config.time.raw_units_per_tick = 1;
  config.dedup.reader_to_area = {{0, 0}, {1, 0}};  // redundant readers
  config.generation.area_to_event_type = {{0, "SHELF_READING"}};
  CleaningPipeline pipeline(config, &catalog, nullptr, &sink);

  pipeline.OnReading(MakeReading(GoodTag(1), 0, 1));
  pipeline.OnReading(MakeReading("BAD!", 0, 1));           // spurious
  pipeline.OnReading(MakeReading(GoodTag(1), 1, 1));       // duplicate
  pipeline.OnReading(MakeReading(GoodTag(1), 0, 3));       // gap -> fill t=2
  pipeline.OnFlush();

  // Events: t=1 (original), t=2 (smoothed fill), t=3.
  ASSERT_EQ(sink.events().size(), 3u);
  EXPECT_TRUE(sink.flushed());
  EXPECT_EQ(pipeline.anomaly_filter().stats().dropped_spurious, 1u);
  EXPECT_EQ(pipeline.deduplication().stats().dropped_duplicates, 1u);
  EXPECT_EQ(pipeline.smoothing().stats().readings_filled, 1u);
  EXPECT_EQ(pipeline.event_generation().stats().events_out, 3u);

  std::string report = pipeline.StatsReport();
  EXPECT_NE(report.find("AnomalyFilter"), std::string::npos);
  EXPECT_NE(report.find("EventGeneration"), std::string::npos);
}

TEST(PipelineTest, EventStreamOrderInvariantHolds) {
  // Smoothing emits retroactive readings; the terminal StreamSource must
  // still deliver a non-decreasing event stream.
  Catalog catalog = Catalog::RetailDemo();
  VectorSink sink;
  CleaningPipeline::Config config;
  config.smoothing.window = 4;
  config.smoothing.sampling_interval = 1;
  config.dedup.reader_to_area = {{0, 0}, {1, 1}};
  config.generation.area_to_event_type = {{0, "SHELF_READING"},
                                          {1, "EXIT_READING"}};
  CleaningPipeline pipeline(config, &catalog, nullptr, &sink);
  pipeline.OnReading(MakeReading(GoodTag(1), 0, 1));
  pipeline.OnReading(MakeReading(GoodTag(2), 1, 4));
  pipeline.OnReading(MakeReading(GoodTag(1), 0, 4));  // fills 2,3 retroactively
  Timestamp last = 0;
  for (const auto& event : sink.events()) {
    EXPECT_GE(event->timestamp(), last);
    last = event->timestamp();
  }
}

}  // namespace
}  // namespace sase
