#include "system/console.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "query/parser.h"
#include "rfid/tag.h"

namespace sase {
namespace {

class ConsoleTest : public ::testing::Test {
 protected:
  static SystemConfig PerfectConfig() {
    SystemConfig config;
    config.noise = NoiseModel::Perfect();
    return config;
  }

  ConsoleTest()
      : system_(StoreLayout::RetailDemo(), PerfectConfig()), console_(&system_) {}

  SaseSystem system_;
  Console console_;
};

TEST_F(ConsoleTest, HelpAndUnknownCommands) {
  EXPECT_NE(console_.Execute("help").find("register"), std::string::npos);
  EXPECT_NE(console_.Execute("bogus").find("error: unknown command"),
            std::string::npos);
  EXPECT_EQ(console_.Execute(""), "");
  EXPECT_EQ(console_.Execute("# a comment"), "");
}

TEST_F(ConsoleTest, RegisterQueryAndListIt) {
  std::string out = console_.Execute(
      "register shelf-watch EVENT SHELF_READING s RETURN s.TagId");
  EXPECT_NE(out.find("registered"), std::string::npos);
  EXPECT_NE(console_.Execute("queries").find("shelf-watch"), std::string::npos);
  // Bad query surfaces the parse error.
  EXPECT_NE(console_.Execute("register broken EVENT").find("error:"),
            std::string::npos);
  EXPECT_NE(console_.Execute("register").find("usage"), std::string::npos);
}

TEST_F(ConsoleTest, EndToEndScriptedSession) {
  system_.AddProduct({MakeEpc(1), "Razor", "", true});
  ScenarioScripter scripter(&system_.simulator());
  scripter.Shoplift(MakeEpc(1), 0, 3, /*start=*/1);

  std::string transcript = console_.ExecuteScript(R"(
# demo session
register shoplifting EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100 RETURN x.TagId
rule location EVENT ANY(SHELF_READING s) RETURN _updateLocation(s.TagId, s.AreaId, s.Timestamp)
run 15
stats
queries
)");
  system_.Flush();

  EXPECT_NE(transcript.find("query 'shoplifting' registered"), std::string::npos);
  EXPECT_NE(transcript.find("rule 'location' registered"), std::string::npos);
  EXPECT_NE(transcript.find("simulated to tick"), std::string::npos);
  EXPECT_NE(transcript.find("queries=2"), std::string::npos);
  // All-matches semantics: each of the 3 shelf readings pairs with the
  // exit reading, so the theft raises 3 alerts, all for the stolen tag.
  ASSERT_EQ(console_.alerts().size(), 3u);
  for (const auto& alert : console_.alerts()) {
    EXPECT_NE(alert.find("[shoplifting]"), std::string::npos);
    EXPECT_NE(alert.find(MakeEpc(1)), std::string::npos);
  }
}

TEST_F(ConsoleTest, SqlCommand) {
  EXPECT_NE(console_.Execute("sql SELECT * FROM products").find("(0 rows)"),
            std::string::npos);
  EXPECT_NE(console_.Execute("sql SELECT broken FROM nowhere").find("error:"),
            std::string::npos);
  EXPECT_NE(console_.Execute("sql").find("usage"), std::string::npos);
}

TEST_F(ConsoleTest, TraceAndInventoryCommands) {
  ASSERT_TRUE(system_.archiver().UpdateLocation(MakeEpc(2), 1, 5).ok());
  std::string trace = console_.Execute("trace " + MakeEpc(2));
  EXPECT_NE(trace.find("movement history"), std::string::npos);
  EXPECT_NE(trace.find("current: Shelf 2"), std::string::npos);
  EXPECT_NE(console_.Execute("trace NOPE").find("no history"), std::string::npos);

  std::string inventory = console_.Execute("inventory 1");
  EXPECT_NE(inventory.find("1 item(s) in Shelf 2"), std::string::npos);
  EXPECT_NE(console_.Execute("inventory xyz").find("usage"), std::string::npos);
}

TEST_F(ConsoleTest, WindowCommand) {
  (void)console_.Execute("register w EVENT SHELF_READING s RETURN s.TagId");
  std::string window = console_.Execute("window Present Queries");
  EXPECT_NE(window.find("SHELF_READING"), std::string::npos);
  std::string missing = console_.Execute("window No Such Channel");
  EXPECT_NE(missing.find("error: no channel"), std::string::npos);
  EXPECT_NE(missing.find("Present Queries"), std::string::npos);  // listed
}

TEST_F(ConsoleTest, RunValidation) {
  EXPECT_NE(console_.Execute("run").find("usage"), std::string::npos);
  EXPECT_NE(console_.Execute("run -3").find("usage"), std::string::npos);
  EXPECT_NE(console_.Execute("run ten").find("usage"), std::string::npos);
}

TEST_F(ConsoleTest, CheckpointAndRestoreCommands) {
  std::string dir = ::testing::TempDir() + "/sase_console_checkpoint";
  std::filesystem::remove_all(dir);

  // No directory configured and none given: a clear error, not a crash.
  EXPECT_NE(console_.Execute(".checkpoint").find("error:"), std::string::npos);
  EXPECT_NE(console_.Execute(".restore").find("usage"), std::string::npos);
  EXPECT_NE(console_.Execute(".restore /no/such/dir").find("error:"),
            std::string::npos);

  // A scripted session: product, stateless watch query, archiving rule,
  // some simulated traffic, then a checkpoint to an explicit directory.
  system_.AddProduct({MakeEpc(1), "Razor", "", true});
  ScenarioScripter scripter(&system_.simulator());
  scripter.Shoplift(MakeEpc(1), 0, 3, /*start=*/1);
  (void)console_.Execute(
      "register watch EVENT EXIT_READING e RETURN e.TagId");
  (void)console_.Execute(
      "rule location EVENT ANY(SHELF_READING s) "
      "RETURN _updateLocation(s.TagId, s.AreaId, s.Timestamp)");
  (void)console_.Execute("run 15");
  std::string checkpointed = console_.Execute(".checkpoint " + dir);
  EXPECT_NE(checkpointed.find("checkpoint written to " + dir),
            std::string::npos)
      << checkpointed;

  // Restore swaps the console onto the recovered system: queries are
  // re-registered under their names and the Event Database is back.
  std::string restored = console_.Execute(".restore " + dir);
  EXPECT_NE(restored.find("restored from " + dir), std::string::npos)
      << restored;
  std::string queries = console_.Execute("queries");
  EXPECT_NE(queries.find("watch"), std::string::npos);
  EXPECT_NE(queries.find("location"), std::string::npos);
  // The movement history written before the checkpoint survived.
  EXPECT_NE(console_.Execute("trace " + MakeEpc(1)).find("movement history"),
            std::string::npos);
  // The recovered system keeps working: stats now include checkpoint lines.
  EXPECT_NE(console_.Execute("stats").find("checkpoint:"), std::string::npos);
}

TEST_F(ConsoleTest, CheckpointCoversStatefulSerialQueries) {
  std::string dir = ::testing::TempDir() + "/sase_console_stateful";
  std::filesystem::remove_all(dir);
  // Without checkpointing enabled the shoplifting pattern runs on the
  // serial engine. Its cross-event state used to refuse to checkpoint;
  // snapshot v2 serializes the operator state directly, so the same
  // command now writes a checkpoint.
  (void)console_.Execute(
      "register shoplifting EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), "
      "EXIT_READING z) WHERE x.TagId = y.TagId AND x.TagId = z.TagId "
      "WITHIN 100 RETURN x.TagId");
  std::string written = console_.Execute(".checkpoint " + dir);
  EXPECT_NE(written.find("checkpoint written to " + dir), std::string::npos)
      << written;
}

TEST_F(ConsoleTest, CheckpointErrorNamesTheOffendingQuery) {
  std::string dir = ::testing::TempDir() + "/sase_console_refuse";
  std::filesystem::remove_all(dir);
  // The one remaining per-query refusal: a query registered from a
  // pre-parsed AST has no registration text to re-register on recovery.
  // The error must name the offender and the reason, not just a code.
  auto parsed = Parser::Parse("EVENT SHELF_READING s RETURN s.TagId");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto id = system_.engine().Register(std::move(parsed).value(),
                                      [](const OutputRecord&) {});
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  std::string refused = console_.Execute(".checkpoint " + dir);
  EXPECT_NE(refused.find("error:"), std::string::npos) << refused;
  EXPECT_NE(refused.find("FailedPrecondition"), std::string::npos) << refused;
  EXPECT_NE(refused.find("#" + std::to_string(id.value())), std::string::npos)
      << "the offending query id is not named: " << refused;
  EXPECT_NE(refused.find("pre-parsed AST"), std::string::npos)
      << "the reason is not named: " << refused;
}

TEST_F(ConsoleTest, MetricsCommandRendersPrometheusText) {
  (void)console_.Execute(
      "register shelf-watch EVENT SHELF_READING s RETURN s.TagId");
  system_.AddProduct({MakeEpc(1), "Razor", "", true});
  ScenarioScripter scripter(&system_.simulator());
  scripter.Shoplift(MakeEpc(1), 0, 3, /*start=*/1);
  (void)console_.Execute("run 15");

  std::string text = console_.Execute(".metrics");
  // Prometheus text exposition: every line is a `# TYPE` comment or a
  // "<series> <value>" sample.
  EXPECT_NE(text.find("# TYPE sase_engine_events_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sase_engine_events_total{host=\"serial\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sase_query_op_latency_ns_bucket"), std::string::npos);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.rfind("# TYPE ", 0) == 0) continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }

  // With a path argument the same text goes to the file.
  std::string path = ::testing::TempDir() + "/sase_console_metrics.prom";
  std::string written = console_.Execute(".metrics " + path);
  EXPECT_NE(written.find("metrics written to " + path), std::string::npos)
      << written;
  std::ifstream file(path);
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_NE(content.str().find("sase_engine_events_total"),
            std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(ConsoleTest, TraceCommandsSampleAndDump) {
  EXPECT_NE(console_.Execute(".trace").find("usage"), std::string::npos);
  EXPECT_NE(console_.Execute(".trace on").find("usage"), std::string::npos);
  EXPECT_NE(console_.Execute(".trace on nope").find("usage"),
            std::string::npos);
  EXPECT_NE(console_.Execute(".trace dump").find("usage"), std::string::npos);

  std::string on = console_.Execute(".trace on 1");
  EXPECT_NE(on.find("sampling 1 in 1"), std::string::npos) << on;
  EXPECT_TRUE(system_.tracer().enabled());

  (void)console_.Execute(
      "register shelf-watch EVENT SHELF_READING s RETURN s.TagId");
  system_.AddProduct({MakeEpc(1), "Razor", "", true});
  ScenarioScripter scripter(&system_.simulator());
  scripter.Shoplift(MakeEpc(1), 0, 3, /*start=*/1);
  (void)console_.Execute("run 15");

  std::string path = ::testing::TempDir() + "/sase_console_trace.json";
  std::string dumped = console_.Execute(".trace dump " + path);
  EXPECT_NE(dumped.find("trace dumped to " + path), std::string::npos)
      << dumped;
  std::ifstream file(path);
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_NE(content.str().find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(content.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(content.str().find("\"name\":\"ingest\""), std::string::npos);
  std::filesystem::remove(path);

  std::string off = console_.Execute(".trace off");
  EXPECT_NE(off.find("tracing off"), std::string::npos) << off;
  EXPECT_FALSE(system_.tracer().enabled());

  // help mentions the new commands; the original `trace <tag>` still works.
  EXPECT_NE(console_.Execute("help").find(".trace on"), std::string::npos);
  EXPECT_NE(console_.Execute("help").find(".metrics"), std::string::npos);
  EXPECT_NE(console_.Execute("trace " + MakeEpc(1)).find(MakeEpc(1)),
            std::string::npos);
}

TEST(ConsoleObsTest, StatuszAndSlowlogCommands) {
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  // A 1 ns threshold marks every instrumented event pass as an offender, so
  // the slow-query ring fills deterministically.
  config.obs.slow_query_threshold_ns = 1;
  config.obs.slow_query_log_size = 4;
  SaseSystem system(StoreLayout::RetailDemo(), config);
  Console console(&system);

  EXPECT_NE(console.Execute(".slowlog bogus").find("usage"), std::string::npos);
  EXPECT_NE(console.Execute(".slowlog -2").find("usage"), std::string::npos);

  (void)console.Execute(
      "register shelf-watch EVENT SHELF_READING s RETURN s.TagId");
  system.AddProduct({MakeEpc(1), "Razor", "", true});
  ScenarioScripter scripter(&system.simulator());
  scripter.Shoplift(MakeEpc(1), 0, 3, /*start=*/1);
  (void)console.Execute("run 15");

  std::string statusz = console.Execute(".statusz");
  EXPECT_NE(statusz.find("queries: 1 registered"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("name=shelf-watch"), std::string::npos);
  EXPECT_NE(statusz.find("per-query operator latency"), std::string::npos);
  EXPECT_NE(statusz.find("p99="), std::string::npos);
  EXPECT_NE(statusz.find("slow queries"), std::string::npos) << statusz;

  std::string slowlog = console.Execute(".slowlog 2");
  EXPECT_NE(slowlog.find("slow-query log:"), std::string::npos) << slowlog;
  EXPECT_NE(slowlog.find("serial query=#"), std::string::npos) << slowlog;
  EXPECT_NE(slowlog.find("duration_ns="), std::string::npos);
  // The limit argument caps the listing at 2 samples.
  size_t lines = 0;
  for (size_t at = slowlog.find("query=#"); at != std::string::npos;
       at = slowlog.find("query=#", at + 1)) {
    ++lines;
  }
  EXPECT_EQ(lines, 2u);

  // Both commands appear in help.
  EXPECT_NE(console.Execute("help").find(".statusz"), std::string::npos);
  EXPECT_NE(console.Execute("help").find(".slowlog"), std::string::npos);
}

TEST(ConsoleObsTest, SlowlogReportsDisarmedWithoutMetrics) {
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.obs.metrics_enabled = false;
  SaseSystem system(StoreLayout::RetailDemo(), config);
  Console console(&system);
  EXPECT_NE(console.Execute(".slowlog").find("disarmed"), std::string::npos);
  // .statusz still renders the query/checkpoint sections without a registry.
  EXPECT_NE(console.Execute(".statusz").find("queries: 0 registered"),
            std::string::npos);
}

}  // namespace
}  // namespace sase
