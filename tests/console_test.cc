#include "system/console.h"

#include <gtest/gtest.h>

#include "rfid/tag.h"

namespace sase {
namespace {

class ConsoleTest : public ::testing::Test {
 protected:
  static SystemConfig PerfectConfig() {
    SystemConfig config;
    config.noise = NoiseModel::Perfect();
    return config;
  }

  ConsoleTest()
      : system_(StoreLayout::RetailDemo(), PerfectConfig()), console_(&system_) {}

  SaseSystem system_;
  Console console_;
};

TEST_F(ConsoleTest, HelpAndUnknownCommands) {
  EXPECT_NE(console_.Execute("help").find("register"), std::string::npos);
  EXPECT_NE(console_.Execute("bogus").find("error: unknown command"),
            std::string::npos);
  EXPECT_EQ(console_.Execute(""), "");
  EXPECT_EQ(console_.Execute("# a comment"), "");
}

TEST_F(ConsoleTest, RegisterQueryAndListIt) {
  std::string out = console_.Execute(
      "register shelf-watch EVENT SHELF_READING s RETURN s.TagId");
  EXPECT_NE(out.find("registered"), std::string::npos);
  EXPECT_NE(console_.Execute("queries").find("shelf-watch"), std::string::npos);
  // Bad query surfaces the parse error.
  EXPECT_NE(console_.Execute("register broken EVENT").find("error:"),
            std::string::npos);
  EXPECT_NE(console_.Execute("register").find("usage"), std::string::npos);
}

TEST_F(ConsoleTest, EndToEndScriptedSession) {
  system_.AddProduct({MakeEpc(1), "Razor", "", true});
  ScenarioScripter scripter(&system_.simulator());
  scripter.Shoplift(MakeEpc(1), 0, 3, /*start=*/1);

  std::string transcript = console_.ExecuteScript(R"(
# demo session
register shoplifting EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100 RETURN x.TagId
rule location EVENT ANY(SHELF_READING s) RETURN _updateLocation(s.TagId, s.AreaId, s.Timestamp)
run 15
stats
queries
)");
  system_.Flush();

  EXPECT_NE(transcript.find("query 'shoplifting' registered"), std::string::npos);
  EXPECT_NE(transcript.find("rule 'location' registered"), std::string::npos);
  EXPECT_NE(transcript.find("simulated to tick"), std::string::npos);
  EXPECT_NE(transcript.find("queries=2"), std::string::npos);
  // All-matches semantics: each of the 3 shelf readings pairs with the
  // exit reading, so the theft raises 3 alerts, all for the stolen tag.
  ASSERT_EQ(console_.alerts().size(), 3u);
  for (const auto& alert : console_.alerts()) {
    EXPECT_NE(alert.find("[shoplifting]"), std::string::npos);
    EXPECT_NE(alert.find(MakeEpc(1)), std::string::npos);
  }
}

TEST_F(ConsoleTest, SqlCommand) {
  EXPECT_NE(console_.Execute("sql SELECT * FROM products").find("(0 rows)"),
            std::string::npos);
  EXPECT_NE(console_.Execute("sql SELECT broken FROM nowhere").find("error:"),
            std::string::npos);
  EXPECT_NE(console_.Execute("sql").find("usage"), std::string::npos);
}

TEST_F(ConsoleTest, TraceAndInventoryCommands) {
  ASSERT_TRUE(system_.archiver().UpdateLocation(MakeEpc(2), 1, 5).ok());
  std::string trace = console_.Execute("trace " + MakeEpc(2));
  EXPECT_NE(trace.find("movement history"), std::string::npos);
  EXPECT_NE(trace.find("current: Shelf 2"), std::string::npos);
  EXPECT_NE(console_.Execute("trace NOPE").find("no history"), std::string::npos);

  std::string inventory = console_.Execute("inventory 1");
  EXPECT_NE(inventory.find("1 item(s) in Shelf 2"), std::string::npos);
  EXPECT_NE(console_.Execute("inventory xyz").find("usage"), std::string::npos);
}

TEST_F(ConsoleTest, WindowCommand) {
  (void)console_.Execute("register w EVENT SHELF_READING s RETURN s.TagId");
  std::string window = console_.Execute("window Present Queries");
  EXPECT_NE(window.find("SHELF_READING"), std::string::npos);
  std::string missing = console_.Execute("window No Such Channel");
  EXPECT_NE(missing.find("error: no channel"), std::string::npos);
  EXPECT_NE(missing.find("Present Queries"), std::string::npos);  // listed
}

TEST_F(ConsoleTest, RunValidation) {
  EXPECT_NE(console_.Execute("run").find("usage"), std::string::npos);
  EXPECT_NE(console_.Execute("run -3").find("usage"), std::string::npos);
  EXPECT_NE(console_.Execute("run ten").find("usage"), std::string::npos);
}

}  // namespace
}  // namespace sase
