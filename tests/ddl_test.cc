#include "query/ddl.h"

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "test_util.h"

namespace sase {
namespace {

TEST(DdlTest, DeclaresSingleType) {
  Catalog catalog;
  auto count = DeclareEventTypes(
      &catalog, "EVENT TYPE SENSOR_READING (DeviceId STRING, Reading DOUBLE)");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value(), 1);
  auto id = catalog.FindType("SENSOR_READING");
  ASSERT_TRUE(id.ok());
  const EventSchema& schema = catalog.schema(id.value());
  EXPECT_EQ(schema.attribute_count(), 2u);
  EXPECT_EQ(schema.attribute_type(1), ValueType::kDouble);
}

TEST(DdlTest, DeclaresMultipleTypesWithSemicolonsAndComments) {
  Catalog catalog;
  auto count = DeclareEventTypes(&catalog, R"(
    -- the retail demo schema
    EVENT TYPE SHELF_READING (TagId STRING, AreaId INT, ProductName STRING);
    EVENT TYPE COUNTER_READING (TagId STRING, AreaId INT);
    event type EXIT_READING (TagId string, AreaId integer)
  )");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value(), 3);
  EXPECT_TRUE(catalog.HasType("exit_reading"));
}

TEST(DdlTest, TypeAliases) {
  Catalog catalog;
  auto count = DeclareEventTypes(
      &catalog,
      "EVENT TYPE T (A BIGINT, B REAL, C VARCHAR, D BOOLEAN, E TEXT, F FLOAT)");
  ASSERT_TRUE(count.ok());
  const EventSchema& schema = catalog.schema(catalog.FindType("T").value());
  EXPECT_EQ(schema.attribute_type(0), ValueType::kInt);
  EXPECT_EQ(schema.attribute_type(1), ValueType::kDouble);
  EXPECT_EQ(schema.attribute_type(2), ValueType::kString);
  EXPECT_EQ(schema.attribute_type(3), ValueType::kBool);
  EXPECT_EQ(schema.attribute_type(4), ValueType::kString);
  EXPECT_EQ(schema.attribute_type(5), ValueType::kDouble);
}

TEST(DdlTest, Errors) {
  Catalog catalog;
  EXPECT_FALSE(DeclareEventTypes(&catalog, "TYPE T (A INT)").ok());
  EXPECT_FALSE(DeclareEventTypes(&catalog, "EVENT T (A INT)").ok());
  EXPECT_FALSE(DeclareEventTypes(&catalog, "EVENT TYPE T A INT").ok());
  EXPECT_FALSE(DeclareEventTypes(&catalog, "EVENT TYPE T (A FANCY)").ok());
  EXPECT_FALSE(DeclareEventTypes(&catalog, "EVENT TYPE T (A INT").ok());
  EXPECT_FALSE(DeclareEventTypes(&catalog, "EVENT TYPE T ()").ok());
  // Duplicate type -> error from the catalog; earlier declarations stick.
  auto first = DeclareEventTypes(&catalog, "EVENT TYPE U (A INT)");
  ASSERT_TRUE(first.ok());
  auto dup = DeclareEventTypes(&catalog, "EVENT TYPE u (B INT)");
  EXPECT_FALSE(dup.ok());
  EXPECT_TRUE(catalog.HasType("U"));
}

TEST(DdlTest, DeclaredTypesWorkEndToEnd) {
  // A schema declared textually drives a full query round trip.
  Catalog catalog;
  ASSERT_TRUE(DeclareEventTypes(&catalog, R"(
    EVENT TYPE TEMP_READING (SensorId STRING, Celsius DOUBLE);
    EVENT TYPE ALARM_ACK (SensorId STRING)
  )").ok());

  QueryEngine engine(&catalog);
  int alerts = 0;
  auto id = engine.Register(
      "EVENT SEQ(TEMP_READING a, !(ALARM_ACK k), TEMP_READING b) "
      "WHERE a.SensorId = k.SensorId AND a.SensorId = b.SensorId AND "
      "a.Celsius > 90.0 AND b.Celsius > 90.0 WITHIN 100 "
      "RETURN a.SensorId",
      [&alerts](const OutputRecord&) { ++alerts; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  auto push = [&](const char* type, Timestamp ts, const char* sensor,
                  double celsius) {
    EventBuilder builder(catalog, type);
    builder.Set("SensorId", sensor);
    if (std::string(type) == "TEMP_READING") builder.Set("Celsius", celsius);
    engine.OnEvent(builder.Build(ts, static_cast<SequenceNumber>(ts)).value());
  };
  push("TEMP_READING", 1, "S1", 95.0);
  push("TEMP_READING", 5, "S1", 97.0);   // two unacked overheats -> alert
  push("TEMP_READING", 10, "S2", 95.0);
  push("ALARM_ACK", 12, "S2", 0);
  push("TEMP_READING", 15, "S2", 99.0);  // acked in between -> no alert
  engine.OnFlush();
  EXPECT_EQ(alerts, 1);
}

}  // namespace
}  // namespace sase
