// Randomized differential harness: for each seeded case (generated queries
// + generated stream, tests/query_gen.h) the same workload runs four ways —
//
//   1. one serial QueryEngine (the reference),
//   2. the sharded runtime at 2 shards,
//   3. the sharded runtime at 8 shards,
//   4. a checkpointed SaseSystem killed mid-stream and recovered from disk
//      (snapshot v2 direct operator-state restore + journal suffix replay),
//
// and every execution must produce byte-identical output. Fixed seeds keep
// CI deterministic; a failing case prints its seed and query texts so the
// exact case reproduces with a one-line filter.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "query_gen.h"
#include "runtime/sharded_runtime.h"
#include "system/sase_system.h"

namespace sase {
namespace {

using testgen::GeneratedCase;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/sase_differential_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

OutputCallback Collector(std::vector<std::string>* lines, size_t query) {
  return [lines, query](const OutputRecord& record) {
    lines->push_back("q" + std::to_string(query) + "|" + record.ToString());
  };
}

/// Execution 1: the serial reference.
std::vector<std::string> RunSerial(const Catalog& catalog,
                                   const GeneratedCase& c) {
  std::vector<std::string> lines;
  QueryEngine engine(&catalog);
  for (size_t q = 0; q < c.queries.size(); ++q) {
    auto id = engine.Register(c.queries[q], Collector(&lines, q));
    EXPECT_TRUE(id.ok()) << id.status().ToString() << "\n" << c.Describe();
  }
  for (const EventPtr& event : c.events) engine.OnEvent(event);
  engine.OnFlush();
  return lines;
}

/// Executions 2-3: the sharded runtime.
std::vector<std::string> RunSharded(const Catalog& catalog,
                                    const GeneratedCase& c, int shards) {
  std::vector<std::string> lines;
  RuntimeConfig config;
  config.shard_count = shards;
  config.merge_interval = 64;  // frequent incremental merges
  ShardedRuntime runtime(&catalog, config);
  for (size_t q = 0; q < c.queries.size(); ++q) {
    auto id = runtime.Register(c.queries[q], Collector(&lines, q));
    EXPECT_TRUE(id.ok()) << id.status().ToString() << "\n" << c.Describe();
  }
  for (const EventPtr& event : c.events) runtime.OnEvent(event);
  runtime.OnFlush();
  return lines;
}

/// Execution 4: checkpoint mid-stream, kill without flush, recover from
/// disk, finish the stream. Checkpoint and crash offsets derive from the
/// case seed.
std::vector<std::string> RunCheckpointKillRecover(const GeneratedCase& c,
                                                  int shards,
                                                  const std::string& dir) {
  size_t n = c.events.size();
  size_t checkpoint_at = n / 4 + c.seed % (n / 4);      // [n/4, n/2)
  size_t crash_at = n / 2 + (c.seed / 7) % (n / 2 - 1); // [n/2, n-1)

  std::vector<std::string> lines;
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = shards;
  config.runtime_merge_interval = 64;
  config.checkpoint.dir = dir;
  {
    SaseSystem system(StoreLayout::RetailDemo(), config);
    for (size_t q = 0; q < c.queries.size(); ++q) {
      auto id = system.RegisterMonitoringQuery("q" + std::to_string(q),
                                               c.queries[q],
                                               Collector(&lines, q));
      EXPECT_TRUE(id.ok()) << id.status().ToString() << "\n" << c.Describe();
    }
    for (size_t i = 0; i < crash_at; ++i) {
      if (i == checkpoint_at) {
        Status taken = system.Checkpoint();
        EXPECT_TRUE(taken.ok()) << taken.ToString() << "\n" << c.Describe();
      }
      system.event_bus().OnEvent(c.events[i]);
    }
    // Killed here: destroyed without a flush.
  }
  auto recovered = SaseSystem::Recover(
      dir, StoreLayout::RetailDemo(), config,
      [&lines](const std::string& name) -> OutputCallback {
        return Collector(&lines,
                         static_cast<size_t>(std::atoi(name.c_str() + 1)));
      });
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString() << "\n"
                              << c.Describe();
  if (!recovered.ok()) return lines;
  for (size_t i = crash_at; i < c.events.size(); ++i) {
    recovered.value()->event_bus().OnEvent(c.events[i]);
  }
  recovered.value()->Flush();
  return lines;
}

/// CI sweep: >= 50 seeded cases, zero divergence tolerated. To reproduce
/// one case locally, read the seed off the failure message and run with
/// --gtest_filter=...Differential... after pinning kFirstSeed to it.
constexpr uint64_t kFirstSeed = 1;
constexpr uint64_t kCaseCount = 50;
constexpr int64_t kEventsPerCase = 260;

TEST(DifferentialTest, SerialShardedAndRecoveredExecutionsAgree) {
  Catalog catalog = Catalog::RetailDemo();
  uint64_t interesting = 0;  // cases whose reference produced any output

  for (uint64_t seed = kFirstSeed; seed < kFirstSeed + kCaseCount; ++seed) {
    GeneratedCase c = testgen::GenerateCase(catalog, seed, kEventsPerCase);
    SCOPED_TRACE(c.Describe());

    auto golden = RunSerial(catalog, c);
    if (!golden.empty()) ++interesting;

    EXPECT_EQ(golden, RunSharded(catalog, c, 2)) << "2-shard divergence";
    EXPECT_EQ(golden, RunSharded(catalog, c, 8)) << "8-shard divergence";
    EXPECT_EQ(golden,
              RunCheckpointKillRecover(c, /*shards=*/2,
                                       FreshDir(std::to_string(seed))))
        << "checkpoint-kill-recover divergence";
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "differential divergence; reproduce with " << c.Describe();
    }
  }
  // The sweep must exercise real matching, not 50 cases of silence.
  EXPECT_GE(interesting, kCaseCount / 2)
      << "generator produced mostly output-free cases; widen its windows";
}

}  // namespace
}  // namespace sase
