// Randomized differential harness: for each seeded case (generated queries
// + generated stream, tests/query_gen.h) the same workload runs four ways —
//
//   1. one serial QueryEngine (the reference),
//   2. the sharded runtime at 2 shards,
//   3. the sharded runtime at 8 shards,
//   4. a checkpointed SaseSystem killed mid-stream and recovered from disk
//      (snapshot v2 direct operator-state restore + journal suffix replay),
//
// and every execution must produce byte-identical output. Fixed seeds keep
// CI deterministic; a failing case prints its seed and query texts so the
// exact case reproduces with a one-line filter.
//
// The exactly-once mode adds a fifth way: a consumer-acked (AckMode::
// kConsumer) SaseSystem killed inside the seeded emit-to-ack or
// ack-to-fsync window (tests/query_gen.h AckPlan) at 1, 2 and 8 shards —
// asserting the recovered process re-delivers nothing at or below the
// durable acked cursor, re-deliveries carry their original stamps, and the
// stamp-deduped output is byte-identical to the serial reference.
//
// Env knobs (the nightly `differential-slow` CI job turns them up):
//   SASE_DIFF_CASES  override the seeded case count (default 50)
//   SASE_DIFF_DIR    preserve failing cases' repro banner + checkpoint
//                    directory under this path (uploaded as a CI artifact)

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint/journal.h"
#include "checkpoint/snapshot.h"
#include "engine/query_engine.h"
#include "query_gen.h"
#include "runtime/sharded_runtime.h"
#include "system/sase_system.h"

namespace sase {
namespace {

using testgen::GeneratedCase;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/sase_differential_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

OutputCallback Collector(std::vector<std::string>* lines, size_t query) {
  return [lines, query](const OutputRecord& record) {
    lines->push_back("q" + std::to_string(query) + "|" + record.ToString());
  };
}

/// Execution 1: the serial reference. With `sharing` set the engine runs
/// structurally identical queries on one shared automaton; `shared_hits`
/// (optional) reports how many deliveries were served from a group's
/// buffered matches — the sharing sweep asserts the mode actually engaged.
std::vector<std::string> RunSerial(const Catalog& catalog,
                                   const GeneratedCase& c,
                                   bool sharing = false,
                                   uint64_t* shared_hits = nullptr) {
  std::vector<std::string> lines;
  QueryEngine engine(&catalog);
  engine.set_scan_sharing(sharing);
  for (size_t q = 0; q < c.queries.size(); ++q) {
    auto id = engine.Register(c.queries[q], Collector(&lines, q));
    EXPECT_TRUE(id.ok()) << id.status().ToString() << "\n" << c.Describe();
  }
  for (const EventPtr& event : c.events) engine.OnEvent(event);
  engine.OnFlush();
  if (shared_hits != nullptr) *shared_hits = engine.shared_scan_hits();
  return lines;
}

/// Executions 2-3: the sharded runtime.
std::vector<std::string> RunSharded(const Catalog& catalog,
                                    const GeneratedCase& c, int shards,
                                    bool sharing = false) {
  std::vector<std::string> lines;
  RuntimeConfig config;
  config.shard_count = shards;
  config.merge_interval = 64;  // frequent incremental merges
  config.scan_sharing = sharing;
  ShardedRuntime runtime(&catalog, config);
  for (size_t q = 0; q < c.queries.size(); ++q) {
    auto id = runtime.Register(c.queries[q], Collector(&lines, q));
    EXPECT_TRUE(id.ok()) << id.status().ToString() << "\n" << c.Describe();
  }
  for (const EventPtr& event : c.events) runtime.OnEvent(event);
  runtime.OnFlush();
  return lines;
}

/// Execution 4: checkpoint mid-stream, kill without flush, recover from
/// disk, finish the stream. Checkpoint and crash offsets derive from the
/// case seed.
std::vector<std::string> RunCheckpointKillRecover(const GeneratedCase& c,
                                                  int shards,
                                                  const std::string& dir,
                                                  bool sharing = false) {
  size_t n = c.events.size();
  size_t checkpoint_at = n / 4 + c.seed % (n / 4);      // [n/4, n/2)
  size_t crash_at = n / 2 + (c.seed / 7) % (n / 2 - 1); // [n/2, n-1)

  std::vector<std::string> lines;
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = shards;
  config.runtime_merge_interval = 64;
  config.checkpoint.dir = dir;
  config.scan_sharing = sharing;  // recovery reuses the same config, so a
  // sharing checkpoint is restored into sharing engines (the documented
  // requirement — see docs/recovery.md)
  {
    SaseSystem system(StoreLayout::RetailDemo(), config);
    for (size_t q = 0; q < c.queries.size(); ++q) {
      auto id = system.RegisterMonitoringQuery("q" + std::to_string(q),
                                               c.queries[q],
                                               Collector(&lines, q));
      EXPECT_TRUE(id.ok()) << id.status().ToString() << "\n" << c.Describe();
    }
    for (size_t i = 0; i < crash_at; ++i) {
      if (i == checkpoint_at) {
        Status taken = system.Checkpoint();
        EXPECT_TRUE(taken.ok()) << taken.ToString() << "\n" << c.Describe();
      }
      system.event_bus().OnEvent(c.events[i]);
    }
    // Killed here: destroyed without a flush.
  }
  auto recovered = SaseSystem::Recover(
      dir, StoreLayout::RetailDemo(), config,
      [&lines](const std::string& name) -> OutputCallback {
        return Collector(&lines,
                         static_cast<size_t>(std::atoi(name.c_str() + 1)));
      });
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString() << "\n"
                              << c.Describe();
  if (!recovered.ok()) return lines;
  for (size_t i = crash_at; i < c.events.size(); ++i) {
    recovered.value()->event_bus().OnEvent(c.events[i]);
  }
  recovered.value()->Flush();
  return lines;
}

/// CI sweep: >= 50 seeded cases, zero divergence tolerated. To reproduce
/// one case locally, read the seed off the failure message and run with
/// --gtest_filter=...Differential... after pinning kFirstSeed to it.
constexpr uint64_t kFirstSeed = 1;
constexpr uint64_t kDefaultCaseCount = 50;
constexpr int64_t kEventsPerCase = 260;

uint64_t CaseCount() {
  const char* env = std::getenv("SASE_DIFF_CASES");
  if (env == nullptr) return kDefaultCaseCount;
  uint64_t parsed = std::strtoull(env, nullptr, 10);
  return parsed == 0 ? kDefaultCaseCount : parsed;
}

/// When SASE_DIFF_DIR is set, copies the failing case's reproduction
/// banner and its on-disk checkpoint (journal segments + snapshot) there,
/// so CI can upload the exact bytes the failure happened on.
void PreserveFailureArtifacts(const GeneratedCase& c, int shards,
                              const std::string& checkpoint_dir) {
  const char* env = std::getenv("SASE_DIFF_DIR");
  if (env == nullptr) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path dest = fs::path(env) / ("seed-" + std::to_string(c.seed) +
                                   "-shards-" + std::to_string(shards));
  fs::create_directories(dest, ec);
  std::ofstream repro(dest / "repro.txt");
  repro << c.Describe() << "\nshards=" << shards << "\n";
  if (!checkpoint_dir.empty() && fs::exists(checkpoint_dir, ec)) {
    fs::copy(checkpoint_dir, dest / "checkpoint",
             fs::copy_options::recursive | fs::copy_options::overwrite_existing,
             ec);
  }
}

TEST(DifferentialTest, SerialShardedAndRecoveredExecutionsAgree) {
  Catalog catalog = Catalog::RetailDemo();
  const uint64_t cases = CaseCount();
  uint64_t interesting = 0;  // cases whose reference produced any output

  for (uint64_t seed = kFirstSeed; seed < kFirstSeed + cases; ++seed) {
    GeneratedCase c = testgen::GenerateCase(catalog, seed, kEventsPerCase);
    SCOPED_TRACE(c.Describe());

    auto golden = RunSerial(catalog, c);
    if (!golden.empty()) ++interesting;

    std::string dir = FreshDir(std::to_string(seed));
    EXPECT_EQ(golden, RunSharded(catalog, c, 2)) << "2-shard divergence";
    EXPECT_EQ(golden, RunSharded(catalog, c, 8)) << "8-shard divergence";
    EXPECT_EQ(golden, RunCheckpointKillRecover(c, /*shards=*/2, dir))
        << "checkpoint-kill-recover divergence";
    if (HasFatalFailure() || HasNonfatalFailure()) {
      PreserveFailureArtifacts(c, /*shards=*/2, dir);
      FAIL() << "differential divergence; reproduce with " << c.Describe();
    }
  }
  // The sweep must exercise real matching, not 50 cases of silence.
  EXPECT_GE(interesting, cases / 2)
      << "generator produced mostly output-free cases; widen its windows";
}

/// Multi-query sharing sweep: cases built from families of structurally
/// identical queries (tests/query_gen.h NextFamily) run with scan sharing
/// ON — serial, 2-shard, 8-shard and checkpoint-kill-recover — and every
/// execution must be byte-identical to the serial sharing-OFF reference
/// (dedicated plans). The hit counter proves the mode engaged: a sweep
/// where groups never serve buffered matches would be vacuously green.
TEST(DifferentialTest, SharedScanExecutionsMatchDedicatedPlans) {
  Catalog catalog = Catalog::RetailDemo();
  const uint64_t cases = CaseCount();
  uint64_t interesting = 0;
  uint64_t sharing_engaged = 0;  // cases whose serial sharing run had hits

  for (uint64_t seed = kFirstSeed; seed < kFirstSeed + cases; ++seed) {
    GeneratedCase c = testgen::GenerateSharingCase(catalog, seed,
                                                   kEventsPerCase);
    SCOPED_TRACE(c.Describe());

    auto golden = RunSerial(catalog, c, /*sharing=*/false);
    if (!golden.empty()) ++interesting;

    uint64_t hits = 0;
    std::string dir = FreshDir("share_" + std::to_string(seed));
    EXPECT_EQ(golden, RunSerial(catalog, c, /*sharing=*/true, &hits))
        << "serial sharing divergence";
    if (hits > 0) ++sharing_engaged;
    EXPECT_EQ(golden, RunSharded(catalog, c, 2, /*sharing=*/true))
        << "2-shard sharing divergence";
    EXPECT_EQ(golden, RunSharded(catalog, c, 8, /*sharing=*/true))
        << "8-shard sharing divergence";
    EXPECT_EQ(golden,
              RunCheckpointKillRecover(c, /*shards=*/2, dir, /*sharing=*/true))
        << "sharing checkpoint-kill-recover divergence";
    if (HasFatalFailure() || HasNonfatalFailure()) {
      PreserveFailureArtifacts(c, /*shards=*/2, dir);
      FAIL() << "sharing divergence; reproduce with " << c.Describe();
    }
  }
  EXPECT_GE(interesting, cases / 2)
      << "generator produced mostly output-free cases; widen its windows";
  EXPECT_GE(sharing_engaged, cases * 3 / 4)
      << "families rarely shared a scan; the sweep is not testing sharing";
}

/// Skew-mode sharded execution: like RunSharded, but with the hot-key
/// mitigation knobs set (low trigger cadence so ~260-event cases split).
/// `report` (optional) receives the post-run StatsReport, which the sweep
/// parses for split-engagement accounting.
std::vector<std::string> RunShardedSkewed(const Catalog& catalog,
                                          const GeneratedCase& c, int shards,
                                          bool mitigation,
                                          std::string* report = nullptr) {
  std::vector<std::string> lines;
  RuntimeConfig config;
  config.shard_count = shards;
  config.merge_interval = 64;
  config.hotkey_mitigation = mitigation;
  config.hotkey_min_events = 64;
  config.hotkey_split_threshold = 50;
  ShardedRuntime runtime(&catalog, config);
  for (size_t q = 0; q < c.queries.size(); ++q) {
    auto id = runtime.Register(c.queries[q], Collector(&lines, q));
    EXPECT_TRUE(id.ok()) << id.status().ToString() << "\n" << c.Describe();
  }
  for (const EventPtr& event : c.events) runtime.OnEvent(event);
  runtime.OnFlush();
  if (report != nullptr) *report = runtime.StatsReport();
  return lines;
}

/// Skew-mode checkpoint-kill-recover: mitigation on, so the split table the
/// pre-crash process installed rides the snapshot (v4 SPLIT lines) and the
/// recovered process re-routes split keys identically. `snapshot_had_splits`
/// reports whether the snapshot the recovery actually read carried any
/// split-table entries.
std::vector<std::string> RunSkewedKillRecover(const GeneratedCase& c,
                                              int shards,
                                              const std::string& dir,
                                              bool* snapshot_had_splits) {
  size_t n = c.events.size();
  size_t checkpoint_at = n / 4 + c.seed % (n / 4);      // [n/4, n/2)
  size_t crash_at = n / 2 + (c.seed / 7) % (n / 2 - 1); // [n/2, n-1)

  std::vector<std::string> lines;
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = shards;
  config.runtime_merge_interval = 64;
  config.checkpoint.dir = dir;
  config.hotkey_mitigation = true;
  config.hotkey_min_events = 64;
  config.hotkey_split_threshold = 50;
  {
    SaseSystem system(StoreLayout::RetailDemo(), config);
    for (size_t q = 0; q < c.queries.size(); ++q) {
      auto id = system.RegisterMonitoringQuery("q" + std::to_string(q),
                                               c.queries[q],
                                               Collector(&lines, q));
      EXPECT_TRUE(id.ok()) << id.status().ToString() << "\n" << c.Describe();
    }
    for (size_t i = 0; i < crash_at; ++i) {
      if (i == checkpoint_at) {
        Status taken = system.Checkpoint();
        EXPECT_TRUE(taken.ok()) << taken.ToString() << "\n" << c.Describe();
      }
      system.event_bus().OnEvent(c.events[i]);
    }
    // Killed here: destroyed without a flush.
  }
  if (snapshot_had_splits != nullptr) {
    *snapshot_had_splits = false;
    auto manifest = checkpoint::ReadManifest(dir);
    EXPECT_TRUE(manifest.ok()) << manifest.status().ToString();
    if (manifest.ok()) {
      auto snap = checkpoint::ReadSnapshot(dir, manifest.value(), nullptr);
      EXPECT_TRUE(snap.ok()) << snap.status().ToString();
      if (snap.ok()) *snapshot_had_splits = !snap.value().splits.empty();
    }
  }
  auto recovered = SaseSystem::Recover(
      dir, StoreLayout::RetailDemo(), config,
      [&lines](const std::string& name) -> OutputCallback {
        return Collector(&lines,
                         static_cast<size_t>(std::atoi(name.c_str() + 1)));
      });
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString() << "\n"
                              << c.Describe();
  if (!recovered.ok()) return lines;
  for (size_t i = crash_at; i < c.events.size(); ++i) {
    recovered.value()->event_bus().OnEvent(c.events[i]);
  }
  recovered.value()->Flush();
  return lines;
}

/// Skewed-stream mitigation sweep: a 90%-hot key over the three mitigation
/// families (tests/query_gen.h GenerateSkewedCase) at 1, 2 and 8 shards —
/// mitigation on, mitigation off, and a mitigated checkpoint-kill-recover
/// leg — every execution byte-identical to the serial reference. The
/// engagement counters prove the sweep exercised real splits (and
/// checkpointed them), not 50 cases of never-triggered mitigation.
TEST(DifferentialTest, HotKeyMitigationStaysByteIdentical) {
  Catalog catalog = Catalog::RetailDemo();
  const uint64_t cases = CaseCount();
  uint64_t interesting = 0;
  uint64_t engaged = 0;             // mitigated runs with an active split
  uint64_t checkpointed_splits = 0; // snapshots carrying a split table

  for (uint64_t seed = kFirstSeed; seed < kFirstSeed + cases; ++seed) {
    GeneratedCase c =
        testgen::GenerateSkewedCase(catalog, seed, kEventsPerCase,
                                    /*hot_percent=*/90);
    SCOPED_TRACE(c.Describe());

    auto golden = RunSerial(catalog, c);
    if (!golden.empty()) ++interesting;

    for (int shards : {1, 2, 8}) {
      std::string report;
      EXPECT_EQ(golden,
                RunShardedSkewed(catalog, c, shards, /*mitigation=*/true,
                                 &report))
          << shards << "-shard mitigated divergence";
      if (report.find("hot-key splits:") != std::string::npos &&
          report.find("active=0") == std::string::npos) {
        ++engaged;
      }
      EXPECT_EQ(golden,
                RunShardedSkewed(catalog, c, shards, /*mitigation=*/false))
          << shards << "-shard unmitigated divergence";
    }

    bool had_splits = false;
    std::string dir = FreshDir("skew_" + std::to_string(seed));
    EXPECT_EQ(golden, RunSkewedKillRecover(c, /*shards=*/2, dir, &had_splits))
        << "mitigated checkpoint-kill-recover divergence";
    if (had_splits) ++checkpointed_splits;

    if (HasFatalFailure() || HasNonfatalFailure()) {
      PreserveFailureArtifacts(c, /*shards=*/2, dir);
      FAIL() << "hot-key mitigation divergence; reproduce with "
             << c.Describe();
    }
  }
  EXPECT_GE(interesting, cases / 2)
      << "generator produced mostly output-free cases; widen its windows";
  // Families 0 and 1 (two thirds of seeds) must actually split at every
  // shard count; family 2 refuses by design.
  EXPECT_GE(engaged, cases)
      << "mitigation rarely engaged; the sweep is not testing splits";
  EXPECT_GE(checkpointed_splits, cases / 3)
      << "snapshots rarely carried a split table; the kill-recover leg is "
         "not testing split restore";
}

/// Per-class observations from one consumer-acked kill-recover execution.
struct AckRunResult {
  std::vector<std::string> deduped;  // stamp-deduped output, delivery order
  uint64_t duplicates = 0;           // re-delivered stamps (expected > 0 when
                                     // the crash window held anything)
  uint64_t stamp_mismatches = 0;     // re-delivery whose content or stamp
                                     // differed from the original: fatal
  uint64_t unstamped = 0;            // deliveries without a cursor stamp
  // Durable acked cursor read straight off the disk the crash left behind.
  uint64_t durable_runtime = 0;
  uint64_t durable_serial = 0;
  // What the recovered system resumed from.
  uint64_t recovered_runtime = 0;
  uint64_t recovered_serial = 0;
  bool recovered_fallback = true;
  // Smallest cursor position delivered per class from recovery onwards
  // (replay included); 0 = that class delivered nothing after the kill.
  uint64_t min_redelivered_runtime = 0;
  uint64_t min_redelivered_serial = 0;
};

/// Execution 5: consumer-acked exactly-once mode. The simulated consumer
/// acks per the case's AckPlan, the process is killed mid-stream without a
/// flush (in-memory acks and the pending group-commit batch die with it),
/// and the recovered process finishes the stream against the same
/// consumer's dedup state.
AckRunResult RunAckCrashRecover(const GeneratedCase& c, int shards,
                                const std::string& dir) {
  size_t n = c.events.size();
  size_t checkpoint_at = n / 4 + c.seed % (n / 4);       // [n/4, n/2)
  size_t crash_at = n / 2 + (c.seed / 7) % (n / 2 - 1);  // [n/2, n-1)
  size_t stall_at =
      crash_at * static_cast<size_t>(c.ack_plan.stall_after_percent) / 100;

  AckRunResult result;
  std::map<std::pair<bool, uint64_t>, std::string> stamps;
  SaseSystem* ack_target = nullptr;  // null while no process is up / replay
  bool consumer_acking = true;
  bool after_kill = false;
  auto consumer = [&](size_t q) -> OutputCallback {
    return [&, q](const OutputRecord& record) {
      if (record.cursor_position == 0) {
        ++result.unstamped;
        return;
      }
      std::string line = "q" + std::to_string(q) + "|" + record.ToString();
      auto key = std::make_pair(record.cursor_runtime_hosted,
                                record.cursor_position);
      auto [it, fresh] = stamps.emplace(key, line);
      if (fresh) {
        result.deduped.push_back(line);
      } else {
        ++result.duplicates;
        if (it->second != line) ++result.stamp_mismatches;
      }
      if (after_kill) {
        uint64_t& min_seen = record.cursor_runtime_hosted
                                 ? result.min_redelivered_runtime
                                 : result.min_redelivered_serial;
        if (min_seen == 0 || record.cursor_position < min_seen) {
          min_seen = record.cursor_position;
        }
      }
      if (ack_target != nullptr && consumer_acking &&
          record.cursor_position % c.ack_plan.ack_stride == 0) {
        Status acked = ack_target->AckOutput(record);
        EXPECT_TRUE(acked.ok()) << acked.ToString() << "\n" << c.Describe();
      }
    };
  };

  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = shards;
  config.runtime_merge_interval = 64;
  config.checkpoint.dir = dir;
  config.checkpoint.ack_mode = checkpoint::AckMode::kConsumer;
  config.checkpoint.ack_commit_interval = c.ack_plan.ack_commit_interval;
  {
    SaseSystem system(StoreLayout::RetailDemo(), config);
    ack_target = &system;
    for (size_t q = 0; q < c.queries.size(); ++q) {
      auto id = system.RegisterMonitoringQuery("q" + std::to_string(q),
                                               c.queries[q], consumer(q));
      EXPECT_TRUE(id.ok()) << id.status().ToString() << "\n" << c.Describe();
    }
    for (size_t i = 0; i < crash_at; ++i) {
      if (i == checkpoint_at) {
        Status taken = system.Checkpoint();
        EXPECT_TRUE(taken.ok()) << taken.ToString() << "\n" << c.Describe();
      }
      if (i == stall_at) {
        // Quiesce so everything produced so far is delivered (and acked per
        // the plan) before the consumer stalls: in a tight feed loop the
        // incremental merges trail the dispatcher, and without this the
        // only delivery burst before the kill would be the checkpoint's own
        // quiesce — whose acks the snapshot immediately makes durable,
        // leaving the crash window empty.
        system.runtime()->WaitIdle();
        consumer_acking = false;  // consumer stalls
      }
      system.event_bus().OnEvent(c.events[i]);
    }
    // Final pre-kill burst: these deliveries land after the last durable
    // commit point, so they are exactly the emit-to-ack window (stalled or
    // stride-skipped stamps) plus the ack-to-fsync window (acks still in
    // the journal's pending group-commit batch).
    system.runtime()->WaitIdle();
    ack_target = nullptr;
    // Killed here: destroyed without a flush — unacked deliveries, acks
    // inside the pending commit batch, everything in memory is gone.
  }

  // The durable cursor, read the way recovery will read it: the snapshot's
  // ACKED line superseded by any ack-cursor records journaled after it.
  auto manifest = checkpoint::ReadManifest(dir);
  EXPECT_TRUE(manifest.ok()) << manifest.status().ToString();
  if (!manifest.ok()) return result;
  auto snap = checkpoint::ReadSnapshot(dir, manifest.value(), nullptr);
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  if (!snap.ok()) return result;
  EXPECT_TRUE(snap.value().has_acked) << c.Describe();
  result.durable_runtime = snap.value().acked_runtime;
  result.durable_serial = snap.value().acked_serial;
  auto scan = checkpoint::ReadJournal(dir, manifest.value());
  EXPECT_TRUE(scan.ok()) << scan.status().ToString();
  if (!scan.ok()) return result;
  for (const checkpoint::JournalRecord& record : scan.value().records) {
    if (record.kind == checkpoint::JournalRecord::Kind::kAckCursor) {
      result.durable_runtime =
          std::max(result.durable_runtime, record.acked_runtime);
      result.durable_serial =
          std::max(result.durable_serial, record.acked_serial);
    }
  }

  after_kill = true;
  auto recovered = SaseSystem::Recover(
      dir, StoreLayout::RetailDemo(), config,
      [&consumer](const std::string& name) -> OutputCallback {
        return consumer(static_cast<size_t>(std::atoi(name.c_str() + 1)));
      });
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString() << "\n"
                              << c.Describe();
  if (!recovered.ok()) return result;
  result.recovered_fallback = recovered.value()->recovered_ack_fallback();
  result.recovered_runtime = recovered.value()->acked_runtime();
  result.recovered_serial = recovered.value()->acked_serial();
  ack_target = recovered.value().get();
  consumer_acking = true;  // the consumer comes back with the new process
  for (size_t i = crash_at; i < c.events.size(); ++i) {
    recovered.value()->event_bus().OnEvent(c.events[i]);
  }
  recovered.value()->Flush();
  return result;
}

TEST(DifferentialTest, ExactlyOnceAckedCursorSurvivesCrashWindows) {
  Catalog catalog = Catalog::RetailDemo();
  const uint64_t cases = CaseCount();
  uint64_t redelivering = 0;  // executions that actually re-delivered

  for (uint64_t seed = kFirstSeed; seed < kFirstSeed + cases; ++seed) {
    GeneratedCase c = testgen::GenerateCase(catalog, seed, kEventsPerCase);
    SCOPED_TRACE(c.Describe());
    auto golden = RunSerial(catalog, c);

    for (int shards : {1, 2, 8}) {
      std::string dir = FreshDir("ack_" + std::to_string(seed) + "_" +
                                 std::to_string(shards));
      AckRunResult run = RunAckCrashRecover(c, shards, dir);

      // Every delivery carries a stamp, and a re-delivered stamp always
      // carries the original record bytes.
      EXPECT_EQ(run.unstamped, 0u) << shards << "-shard unstamped delivery";
      EXPECT_EQ(run.stamp_mismatches, 0u)
          << shards << "-shard re-delivery changed content or stamp";

      // The recovery gate IS the durable acked cursor (no fallback), and
      // nothing at or below it is ever delivered again: zero duplicates
      // past the acked cursor.
      EXPECT_FALSE(run.recovered_fallback) << shards << "-shard fallback";
      EXPECT_EQ(run.recovered_runtime, run.durable_runtime) << shards;
      EXPECT_EQ(run.recovered_serial, run.durable_serial) << shards;
      if (run.min_redelivered_runtime != 0) {
        EXPECT_GT(run.min_redelivered_runtime, run.durable_runtime)
            << shards << "-shard duplicate below the acked cursor";
      }
      if (run.min_redelivered_serial != 0) {
        EXPECT_GT(run.min_redelivered_serial, run.durable_serial) << shards;
      }

      // Zero lost acked outputs + acked-suffix byte-equality: the deduped
      // stream is exactly the uninterrupted serial reference.
      EXPECT_EQ(golden, run.deduped) << shards << "-shard deduped divergence";
      if (run.duplicates > 0) ++redelivering;

      if (HasFatalFailure() || HasNonfatalFailure()) {
        PreserveFailureArtifacts(c, shards, dir);
        FAIL() << "exactly-once divergence; reproduce with " << c.Describe();
      }
    }
  }
  // The sweep must actually exercise the crash windows: a harness whose
  // kills always land after a full commit would prove nothing.
  EXPECT_GE(redelivering, cases / 2)
      << "crash windows were mostly empty; widen the ack plans";
}

}  // namespace
}  // namespace sase
