#include "db/dump.h"

#include <gtest/gtest.h>

#include <sstream>

#include "db/archiver.h"
#include "db/sql_executor.h"
#include "db/track_trace.h"

namespace sase {
namespace db {
namespace {

std::unique_ptr<Database> RoundTrip(const Database& database) {
  std::ostringstream out;
  EXPECT_TRUE(Dump(database, &out).ok());
  std::istringstream in(out.str());
  auto loaded = Load(&in);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::move(loaded).value();
}

TEST(DumpTest, EmptyDatabase) {
  Database database;
  auto loaded = RoundTrip(database);
  EXPECT_EQ(loaded->table_count(), 0u);
}

TEST(DumpTest, PreservesSchemaRowsAndValues) {
  Database database;
  Table* table = database
                     .CreateTable("t", {{"S", ValueType::kString},
                                        {"I", ValueType::kInt},
                                        {"D", ValueType::kDouble},
                                        {"B", ValueType::kBool}})
                     .value();
  ASSERT_TRUE(table->Insert({Value("plain"), Value(42), Value(2.5), Value(true)}).ok());
  ASSERT_TRUE(table->Insert({Value(), Value(), Value(), Value()}).ok());  // NULLs
  ASSERT_TRUE(
      table->Insert({Value("pipe| back\\slash\nnewline"), Value(-7), Value(0.125),
                     Value(false)})
          .ok());

  auto loaded = RoundTrip(database);
  Table* copy = loaded->GetTable("t");
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->row_count(), 3u);
  EXPECT_EQ(copy->columns()[0].name, "S");
  EXPECT_EQ(copy->columns()[2].type, ValueType::kDouble);

  std::vector<Row> rows;
  copy->Scan([&](RowId, const Row& row) {
    rows.push_back(row);
    return true;
  });
  EXPECT_EQ(rows[0][0].AsString(), "plain");
  EXPECT_EQ(rows[0][1].AsInt(), 42);
  EXPECT_TRUE(rows[1][0].is_null());
  EXPECT_EQ(rows[2][0].AsString(), "pipe| back\\slash\nnewline");
  EXPECT_EQ(rows[2][1].AsInt(), -7);
  EXPECT_DOUBLE_EQ(rows[2][2].AsDouble(), 0.125);
  EXPECT_FALSE(rows[2][3].AsBool());
}

TEST(DumpTest, RestoresIndexes) {
  Database database;
  Table* table =
      database.CreateTable("t", {{"K", ValueType::kString}, {"V", ValueType::kInt}})
          .value();
  ASSERT_TRUE(table->CreateIndex("K").ok());
  ASSERT_TRUE(table->Insert({Value("a"), Value(1)}).ok());
  ASSERT_TRUE(table->Insert({Value("a"), Value(2)}).ok());

  auto loaded = RoundTrip(database);
  Table* copy = loaded->GetTable("t");
  ASSERT_TRUE(copy->HasIndex(0));
  auto hits = copy->Lookup(0, Value("a"));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value().size(), 2u);
}

TEST(DumpTest, ArchiveSurvivesRoundTripWithWorkingQueries) {
  // The §4 workflow: pre-populate, persist, reload, run track-and-trace.
  Database database;
  Archiver archiver(&database);
  ASSERT_TRUE(archiver.UpdateLocation("T1", 1, 10).ok());
  ASSERT_TRUE(archiver.UpdateLocation("T1", 2, 20).ok());
  ASSERT_TRUE(archiver.UpdateContainment("T1", "BOX", 15).ok());
  ASSERT_TRUE(archiver.DescribeArea(2, "shelf two").ok());

  auto loaded = RoundTrip(database);
  TrackTrace trace(loaded.get());
  auto current = trace.CurrentLocation("T1");
  ASSERT_TRUE(current.has_value());
  EXPECT_EQ(current->where.AsInt(), 2);
  EXPECT_EQ(trace.MovementHistory("T1").size(), 3u);

  // SQL works over the restored database, including the index access path.
  SqlExecutor executor(loaded.get());
  auto result = executor.Execute(
      "SELECT AreaId FROM location_history WHERE TagId = 'T1' AND TimeOut IS NULL");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0][0].AsInt(), 2);
  EXPECT_GT(executor.index_lookups(), 0u);
}

TEST(DumpTest, FileRoundTrip) {
  Database database;
  Table* table = database.CreateTable("t", {{"A", ValueType::kInt}}).value();
  ASSERT_TRUE(table->Insert({Value(7)}).ok());
  std::string path = ::testing::TempDir() + "/sase_dump_test.db";
  ASSERT_TRUE(DumpToFile(database, path).ok());
  auto loaded = LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->GetTable("t")->row_count(), 1u);
  EXPECT_FALSE(LoadFromFile("/nonexistent/nope.db").ok());
}

TEST(DumpTest, MalformedInputsRejected) {
  auto load = [](const std::string& text) {
    std::istringstream in(text);
    return Load(&in);
  };
  EXPECT_FALSE(load("GARBAGE\n").ok());
  EXPECT_FALSE(load("TABLE t\n").ok());                       // missing schema
  EXPECT_FALSE(load("TABLE t\nA:FANCY\nEND\n").ok());         // bad type
  EXPECT_FALSE(load("TABLE t\nA:INT\nROW X:1\nEND\n").ok());  // bad value tag
  EXPECT_FALSE(load("TABLE t\nA:INT\nBOGUS\nEND\n").ok());    // bad row line
  EXPECT_FALSE(load("TABLE t\nA:INT\nROW I:1|I:2\nEND\n").ok());  // arity
}

}  // namespace
}  // namespace db
}  // namespace sase
