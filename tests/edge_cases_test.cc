// Edge-case battery for the matcher: degenerate windows, timestamp bursts,
// repeated types, stacked negations, empty streams — each checked against
// the brute-force oracle or a hand-derived expectation.

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sase {
namespace {

using testing::RunEngine;
using testing::RunReference;
using testing::StreamBuilder;

class EdgeCasesTest : public ::testing::Test {
 protected:
  Catalog catalog_ = Catalog::RetailDemo();
};

TEST_F(EdgeCasesTest, WindowOfOneTick) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A")
        .Add("EXIT_READING", 2, "A")    // span 1: in
        .Add("SHELF_READING", 5, "B")
        .Add("EXIT_READING", 7, "B");   // span 2: out
  auto out = RunEngine(
      catalog_,
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId "
      "WITHIN 1",
      stream.events());
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(EdgeCasesTest, SameTimestampBurst) {
  // 30 events all at tick 5 — strict ordering admits no sequences at all;
  // then one later event completes pairs with every earlier shelf event.
  StreamBuilder stream(&catalog_);
  for (int i = 0; i < 30; ++i) {
    stream.Add(i % 2 == 0 ? "SHELF_READING" : "EXIT_READING", 5, "T");
  }
  const char* query =
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId";
  EXPECT_TRUE(RunEngine(catalog_, query, stream.events()).empty());

  stream.Add("EXIT_READING", 6, "T");
  auto out = RunEngine(catalog_, query, stream.events());
  EXPECT_EQ(out.size(), 15u);  // all 15 shelf events pair with the late exit
  EXPECT_EQ(out, RunReference(catalog_, query, stream.events()));
}

TEST_F(EdgeCasesTest, TripleRepeatedType) {
  StreamBuilder stream(&catalog_);
  for (int i = 1; i <= 6; ++i) stream.Add("SHELF_READING", i, "T");
  const char* query =
      "EVENT SEQ(SHELF_READING a, SHELF_READING b, SHELF_READING c) "
      "WHERE a.TagId = b.TagId AND a.TagId = c.TagId WITHIN 100";
  auto out = RunEngine(catalog_, query, stream.events());
  EXPECT_EQ(out.size(), 20u);  // C(6,3)
  EXPECT_EQ(out, RunReference(catalog_, query, stream.events()));
}

TEST_F(EdgeCasesTest, TwoNegationsBetweenTheSamePositives) {
  const char* query =
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), "
      "!(BACKROOM_READING w), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = w.TagId AND x.TagId = z.TagId "
      "WITHIN 100";
  {
    StreamBuilder stream(&catalog_);
    stream.Add("SHELF_READING", 1, "T").Add("EXIT_READING", 9, "T");
    EXPECT_EQ(RunEngine(catalog_, query, stream.events()).size(), 1u);
  }
  {
    StreamBuilder stream(&catalog_);
    stream.Add("SHELF_READING", 1, "T")
          .Add("BACKROOM_READING", 4, "T")  // second negation violated
          .Add("EXIT_READING", 9, "T");
    EXPECT_TRUE(RunEngine(catalog_, query, stream.events()).empty());
  }
  {
    StreamBuilder stream(&catalog_);
    stream.Add("SHELF_READING", 1, "T")
          .Add("COUNTER_READING", 4, "T")  // first negation violated
          .Add("EXIT_READING", 9, "T");
    EXPECT_TRUE(RunEngine(catalog_, query, stream.events()).empty());
  }
}

TEST_F(EdgeCasesTest, NegationFilterWithArithmetic) {
  // Only counters in an adjacent area (x.AreaId + 1) suppress.
  const char* query =
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = z.TagId AND y.AreaId = x.AreaId + 1 WITHIN 50";
  StreamBuilder suppressed(&catalog_);
  suppressed.Add("SHELF_READING", 1, "T", 2)
            .Add("COUNTER_READING", 3, "OTHER", 3)  // area 3 == 2 + 1
            .Add("EXIT_READING", 5, "T", 9);
  EXPECT_TRUE(RunEngine(catalog_, query, suppressed.events()).empty());
  EXPECT_EQ(RunReference(catalog_, query, suppressed.events()).size(), 0u);

  StreamBuilder passing(&catalog_);
  passing.Add("SHELF_READING", 1, "T", 2)
         .Add("COUNTER_READING", 3, "OTHER", 7)  // wrong area
         .Add("EXIT_READING", 5, "T", 9);
  EXPECT_EQ(RunEngine(catalog_, query, passing.events()).size(), 1u);
}

TEST_F(EdgeCasesTest, EmptyStreamAndFlushOnly) {
  std::vector<EventPtr> empty;
  EXPECT_TRUE(RunEngine(catalog_,
                        "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y)) "
                        "WHERE x.TagId = y.TagId WITHIN 10",
                        empty)
                  .empty());
}

TEST_F(EdgeCasesTest, StreamOfIrrelevantTypesOnly) {
  StreamBuilder stream(&catalog_);
  for (int i = 1; i <= 50; ++i) stream.Add("BACKROOM_READING", i, "T");
  auto out = RunEngine(catalog_,
                       "EVENT SEQ(SHELF_READING x, EXIT_READING z) WITHIN 10",
                       stream.events());
  EXPECT_TRUE(out.empty());
}

TEST_F(EdgeCasesTest, LargeTimestampJumps) {
  // Gaps far larger than the window must fully drain the stacks.
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "T")
        .Add("EXIT_READING", 1000000, "T")
        .Add("SHELF_READING", 2000000, "T")
        .Add("EXIT_READING", 2000005, "T");
  const char* query =
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId "
      "WITHIN 10";
  auto out = RunEngine(catalog_, query, stream.events());
  EXPECT_EQ(out.size(), 1u);  // only the final pair is within the window
  EXPECT_EQ(out, RunReference(catalog_, query, stream.events()));
}

TEST_F(EdgeCasesTest, ManyPartitionsExpireUnderSweep) {
  // >4096 events with unique tags force the periodic partition sweep; the
  // plan must stay correct and memory-bounded.
  StreamBuilder stream(&catalog_);
  for (int i = 0; i < 6000; ++i) {
    stream.Add(i % 2 == 0 ? "SHELF_READING" : "EXIT_READING", i + 1,
               "UNIQUE" + std::to_string(i));
  }
  auto out = RunEngine(catalog_,
                       "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
                       "WHERE x.TagId = z.TagId WITHIN 100",
                       stream.events());
  EXPECT_TRUE(out.empty());  // every tag appears exactly once
}

TEST_F(EdgeCasesTest, WindowLargerThanStreamEqualsNoWindow) {
  StreamBuilder stream(&catalog_);
  Random rng(5);
  Timestamp ts = 0;
  for (int i = 0; i < 60; ++i) {
    ts += rng.Uniform(1, 3);
    stream.Add(i % 2 == 0 ? "SHELF_READING" : "EXIT_READING", ts,
               "T" + std::to_string(rng.Uniform(0, 2)));
  }
  std::string keyed =
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId";
  auto unwindowed = RunEngine(catalog_, keyed, stream.events());
  auto huge_window =
      RunEngine(catalog_, keyed + " WITHIN 1000000", stream.events());
  EXPECT_EQ(unwindowed, huge_window);
}

TEST_F(EdgeCasesTest, SingleEventPatternWithHeadNegation) {
  // Negation directly before a single positive: exit with no prior shelf
  // sighting of the same tag in the window — a "ghost exit" detector.
  const char* query =
      "EVENT SEQ(!(SHELF_READING y), EXIT_READING z) "
      "WHERE y.TagId = z.TagId WITHIN 5";
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "SEEN")
        .Add("EXIT_READING", 3, "SEEN")      // shelf@1 in [-2,3): suppressed
        .Add("EXIT_READING", 4, "GHOST");    // never shelved: alert
  auto out = RunEngine(catalog_, query, stream.events());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].find("GHOST"), std::string::npos);
  EXPECT_EQ(out, RunReference(catalog_, query, stream.events()));
}

TEST_F(EdgeCasesTest, AllOptionCombinationsOnPathologicalStream) {
  // Heavy duplicate-timestamp, few-tag stream designed to stress the
  // back-pointer logic; cross-check all 8 plan configurations.
  StreamBuilder stream(&catalog_);
  Random rng(77);
  Timestamp ts = 1;
  for (int i = 0; i < 90; ++i) {
    if (rng.Bernoulli(0.5)) ts += 1;  // 50% duplicate timestamps
    int pick = static_cast<int>(rng.Uniform(0, 2));
    const char* type = pick == 0 ? "SHELF_READING"
                                 : (pick == 1 ? "COUNTER_READING" : "EXIT_READING");
    stream.Add(type, ts, "T" + std::to_string(rng.Uniform(0, 1)));
  }
  const char* query =
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 20";
  auto expected = RunReference(catalog_, query, stream.events());
  for (bool w : {true, false}) {
    for (bool p : {true, false}) {
      for (bool k : {true, false}) {
        PlanOptions options;
        options.push_window = w;
        options.push_predicates = p;
        options.use_partitioning = k;
        EXPECT_EQ(RunEngine(catalog_, query, stream.events(), options), expected)
            << options.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace sase
