// Property tests: on randomized streams, the optimized engine must produce
// exactly the brute-force ReferenceMatcher's match set, under every
// combination of plan optimizations. This is the core correctness guarantee
// for the paper's optimizations — pushdowns must never change semantics.

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sase {
namespace {

using testing::RunEngine;
using testing::RunReference;
using testing::StreamBuilder;

struct PropertyCase {
  const char* name;
  const char* query;
  int types;        // how many of SHELF/COUNTER/EXIT/BACKROOM to draw from
  int tag_count;
  int event_count;
};

const PropertyCase kCases[] = {
    {"Pair",
     "EVENT SEQ(SHELF_READING a, EXIT_READING b) WHERE a.TagId = b.TagId "
     "WITHIN 30",
     2, 4, 150},
    {"PairNoWindow",
     "EVENT SEQ(SHELF_READING a, EXIT_READING b) WHERE a.TagId = b.TagId", 2,
     3, 80},
    {"Triple",
     "EVENT SEQ(SHELF_READING a, COUNTER_READING b, EXIT_READING c) "
     "WHERE a.TagId = b.TagId AND a.TagId = c.TagId WITHIN 40",
     3, 5, 150},
    {"TripleUnkeyed",
     "EVENT SEQ(SHELF_READING a, COUNTER_READING b, EXIT_READING c) WITHIN 12",
     3, 3, 90},
    {"RepeatedType",
     "EVENT SEQ(SHELF_READING a, SHELF_READING b) "
     "WHERE a.TagId = b.TagId AND a.AreaId != b.AreaId WITHIN 25",
     1, 4, 120},
    {"MiddleNegation",
     "EVENT SEQ(SHELF_READING a, !(COUNTER_READING n), EXIT_READING b) "
     "WHERE a.TagId = n.TagId AND a.TagId = b.TagId WITHIN 50",
     3, 4, 150},
    {"NegationUnkeyed",
     "EVENT SEQ(SHELF_READING a, !(COUNTER_READING n), EXIT_READING b) "
     "WITHIN 15",
     3, 3, 90},
    {"HeadNegation",
     "EVENT SEQ(!(COUNTER_READING n), EXIT_READING b) "
     "WHERE n.TagId = b.TagId WITHIN 20",
     3, 4, 140},
    {"TailNegation",
     "EVENT SEQ(SHELF_READING a, !(COUNTER_READING n)) "
     "WHERE a.TagId = n.TagId WITHIN 20",
     3, 4, 140},
    {"MixedPredicates",
     "EVENT SEQ(SHELF_READING a, EXIT_READING b) "
     "WHERE a.TagId = b.TagId AND a.AreaId < 3 AND b.AreaId >= 1 AND "
     "a.AreaId != b.AreaId WITHIN 35",
     2, 4, 150},
    {"ArithmeticPredicate",
     "EVENT SEQ(SHELF_READING a, EXIT_READING b) "
     "WHERE a.AreaId + 1 = b.AreaId WITHIN 30",
     2, 3, 120},
    {"FourPositives",
     "EVENT SEQ(SHELF_READING a, COUNTER_READING b, EXIT_READING c, "
     "BACKROOM_READING d) WHERE a.TagId = b.TagId AND a.TagId = c.TagId AND "
     "a.TagId = d.TagId WITHIN 60",
     4, 4, 160},
    {"DoubleNegation",
     "EVENT SEQ(SHELF_READING a, !(COUNTER_READING n), EXIT_READING b, "
     "!(BACKROOM_READING m)) WHERE a.TagId = n.TagId AND a.TagId = b.TagId "
     "AND a.TagId = m.TagId WITHIN 40",
     4, 3, 130},
    {"NegationWithFilterOnly",
     "EVENT SEQ(SHELF_READING a, !(COUNTER_READING n), EXIT_READING b) "
     "WHERE n.AreaId = 2 WITHIN 25",
     3, 3, 100},
};

class EnginePropertyTest
    : public ::testing::TestWithParam<std::tuple<PropertyCase, uint64_t>> {};

std::vector<EventPtr> RandomStream(const Catalog& catalog,
                                   const PropertyCase& pcase, uint64_t seed) {
  static const char* kTypes[] = {"SHELF_READING", "COUNTER_READING",
                                 "EXIT_READING", "BACKROOM_READING"};
  Random rng(seed);
  StreamBuilder stream(&catalog);
  Timestamp ts = 0;
  for (int i = 0; i < pcase.event_count; ++i) {
    // Occasionally repeat timestamps to exercise the strict-order rule.
    if (!rng.Bernoulli(0.2)) ts += rng.Uniform(1, 3);
    const char* type;
    if (pcase.types == 1) {
      type = "SHELF_READING";
    } else {
      type = kTypes[rng.Uniform(0, pcase.types - 1)];
    }
    stream.Add(type, ts, "T" + std::to_string(rng.Uniform(0, pcase.tag_count - 1)),
               rng.Uniform(0, 4));
  }
  return stream.events();
}

TEST_P(EnginePropertyTest, EngineMatchesReferenceUnderAllPlanOptions) {
  const auto& [pcase, seed] = GetParam();
  Catalog catalog = Catalog::RetailDemo();
  auto events = RandomStream(catalog, pcase, seed);

  auto expected = RunReference(catalog, pcase.query, events);

  for (bool push_window : {true, false}) {
    for (bool push_predicates : {true, false}) {
      for (bool use_partitioning : {true, false}) {
        PlanOptions options;
        options.push_window = push_window;
        options.push_predicates = push_predicates;
        options.use_partitioning = use_partitioning;
        auto actual = RunEngine(catalog, pcase.query, events, options);
        ASSERT_EQ(actual, expected)
            << pcase.name << " seed=" << seed << " options "
            << options.ToString() << ": engine=" << actual.size()
            << " reference=" << expected.size();
      }
    }
  }
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<PropertyCase, uint64_t>>& info) {
  return std::string(std::get<0>(info.param).name) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    RandomStreams, EnginePropertyTest,
    ::testing::Combine(::testing::ValuesIn(kCases),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    CaseName);

/// Shared-scan lifecycle hammer: one engine runs with scan sharing ON (group
/// match buffers live in epoch-reset arenas, members attach and detach from
/// shared automata) while a twin runs the identical call sequence with
/// sharing OFF (dedicated plans, the reference). The seeded driver
/// interleaves mid-stream registrations (exercising the join gate),
/// unregistrations (group membership churn and group teardown), event
/// bursts, and in-place SerializeState/RestoreState round trips of every
/// live plan on the sharing engine (the shared checkpoint path: NFA-line
/// extras, group-scan reload, epoch re-arm). Outputs must stay identical
/// per query. The suite runs under ASan+UBSan in CI's sanitize job, so a
/// dangling arena pointer or a stale group reference fails loudly here.
class SharedArenaLifecycleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SharedArenaLifecycleTest, RegisterUnregisterCheckpointRestoreAgree) {
  const uint64_t seed = GetParam();
  Random rng(seed * 104729);
  Catalog catalog = Catalog::RetailDemo();

  // A family sharing one scan (constants and windows vary) plus an
  // occasional structurally distinct shape so groups coexist with
  // dedicated-sized groups of one.
  auto variant = [](int64_t i) -> std::string {
    if (i % 5 == 4) {
      return "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
             "WHERE x.TagId = z.TagId WITHIN " + std::to_string(40 + 10 * (i % 3));
    }
    return "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
           "WHERE x.TagId = y.TagId AND x.TagId = z.TagId AND z.AreaId >= " +
           std::to_string(i % 4) + " WITHIN " + std::to_string(30 + 10 * (i % 5));
  };

  QueryEngine shared_engine(&catalog);
  shared_engine.set_scan_sharing(true);
  QueryEngine dedicated_engine(&catalog);

  std::map<QueryId, std::vector<std::string>> shared_out, dedicated_out;
  std::vector<QueryId> live;
  int64_t next_variant = 0;

  auto register_one = [&]() {
    std::string text = variant(next_variant++);
    // The callback outlives this scope, so the id cell it keys on must too.
    auto qid = std::make_shared<QueryId>(0);
    auto shared_id = shared_engine.Register(
        text, [&shared_out, qid](const OutputRecord& record) {
          shared_out[*qid].push_back(record.ToString());
        });
    ASSERT_TRUE(shared_id.ok()) << shared_id.status().ToString();
    *qid = shared_id.value();
    auto did = std::make_shared<QueryId>(0);
    auto dedicated_id = dedicated_engine.Register(
        text, [&dedicated_out, did](const OutputRecord& record) {
          dedicated_out[*did].push_back(record.ToString());
        });
    ASSERT_TRUE(dedicated_id.ok()) << dedicated_id.status().ToString();
    *did = dedicated_id.value();
    ASSERT_EQ(*qid, *did) << "twin engines diverged on id assignment";
    live.push_back(*qid);
  };

  // Seed a family before the stream starts.
  for (int i = 0; i < 3; ++i) register_one();

  StreamBuilder stream(&catalog);
  static const char* kTypes[] = {"SHELF_READING", "COUNTER_READING",
                                 "EXIT_READING"};
  Timestamp ts = 0;
  for (int burst = 0; burst < 40; ++burst) {
    const int64_t action = rng.Uniform(0, 9);
    if (action <= 2) {
      register_one();
    } else if (action <= 4 && live.size() > 1) {
      size_t at = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(live.size()) - 1));
      QueryId victim = live[at];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
      ASSERT_TRUE(shared_engine.Unregister(victim).ok());
      ASSERT_TRUE(dedicated_engine.Unregister(victim).ok());
    } else if (action == 5) {
      // In-place checkpoint round trip of every live plan on the sharing
      // engine only; the reference runs straight through. Restoring
      // identical state must be output-invisible.
      for (QueryId qid : live) {
        auto payload = shared_engine.SerializeState(qid);
        ASSERT_TRUE(payload.ok()) << payload.status().ToString();
        Status restored = shared_engine.RestoreState(qid, payload.value());
        ASSERT_TRUE(restored.ok())
            << restored.ToString() << " (query " << qid << " seed " << seed
            << ")";
      }
      Status engine_state = shared_engine.RestoreEngineState(
          shared_engine.SerializeEngineState());
      ASSERT_TRUE(engine_state.ok()) << engine_state.ToString();
    }
    const int64_t events = rng.Uniform(4, 12);
    for (int64_t i = 0; i < events; ++i) {
      if (!rng.Bernoulli(0.2)) ts += rng.Uniform(1, 3);
      stream.Add(kTypes[rng.Uniform(0, 2)], ts,
                 "T" + std::to_string(rng.Uniform(0, 5)), rng.Uniform(0, 4));
      const EventPtr& event = stream.events().back();
      shared_engine.OnEvent(event);
      dedicated_engine.OnEvent(event);
    }
  }
  shared_engine.OnFlush();
  dedicated_engine.OnFlush();

  EXPECT_EQ(shared_out, dedicated_out) << "sharing diverged at seed " << seed;
  EXPECT_GT(shared_engine.shared_scan_hits(), 0u)
      << "the hammer never exercised a shared group (seed " << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedArenaLifecycleTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace sase
