// Property tests: on randomized streams, the optimized engine must produce
// exactly the brute-force ReferenceMatcher's match set, under every
// combination of plan optimizations. This is the core correctness guarantee
// for the paper's optimizations — pushdowns must never change semantics.

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sase {
namespace {

using testing::RunEngine;
using testing::RunReference;
using testing::StreamBuilder;

struct PropertyCase {
  const char* name;
  const char* query;
  int types;        // how many of SHELF/COUNTER/EXIT/BACKROOM to draw from
  int tag_count;
  int event_count;
};

const PropertyCase kCases[] = {
    {"Pair",
     "EVENT SEQ(SHELF_READING a, EXIT_READING b) WHERE a.TagId = b.TagId "
     "WITHIN 30",
     2, 4, 150},
    {"PairNoWindow",
     "EVENT SEQ(SHELF_READING a, EXIT_READING b) WHERE a.TagId = b.TagId", 2,
     3, 80},
    {"Triple",
     "EVENT SEQ(SHELF_READING a, COUNTER_READING b, EXIT_READING c) "
     "WHERE a.TagId = b.TagId AND a.TagId = c.TagId WITHIN 40",
     3, 5, 150},
    {"TripleUnkeyed",
     "EVENT SEQ(SHELF_READING a, COUNTER_READING b, EXIT_READING c) WITHIN 12",
     3, 3, 90},
    {"RepeatedType",
     "EVENT SEQ(SHELF_READING a, SHELF_READING b) "
     "WHERE a.TagId = b.TagId AND a.AreaId != b.AreaId WITHIN 25",
     1, 4, 120},
    {"MiddleNegation",
     "EVENT SEQ(SHELF_READING a, !(COUNTER_READING n), EXIT_READING b) "
     "WHERE a.TagId = n.TagId AND a.TagId = b.TagId WITHIN 50",
     3, 4, 150},
    {"NegationUnkeyed",
     "EVENT SEQ(SHELF_READING a, !(COUNTER_READING n), EXIT_READING b) "
     "WITHIN 15",
     3, 3, 90},
    {"HeadNegation",
     "EVENT SEQ(!(COUNTER_READING n), EXIT_READING b) "
     "WHERE n.TagId = b.TagId WITHIN 20",
     3, 4, 140},
    {"TailNegation",
     "EVENT SEQ(SHELF_READING a, !(COUNTER_READING n)) "
     "WHERE a.TagId = n.TagId WITHIN 20",
     3, 4, 140},
    {"MixedPredicates",
     "EVENT SEQ(SHELF_READING a, EXIT_READING b) "
     "WHERE a.TagId = b.TagId AND a.AreaId < 3 AND b.AreaId >= 1 AND "
     "a.AreaId != b.AreaId WITHIN 35",
     2, 4, 150},
    {"ArithmeticPredicate",
     "EVENT SEQ(SHELF_READING a, EXIT_READING b) "
     "WHERE a.AreaId + 1 = b.AreaId WITHIN 30",
     2, 3, 120},
    {"FourPositives",
     "EVENT SEQ(SHELF_READING a, COUNTER_READING b, EXIT_READING c, "
     "BACKROOM_READING d) WHERE a.TagId = b.TagId AND a.TagId = c.TagId AND "
     "a.TagId = d.TagId WITHIN 60",
     4, 4, 160},
    {"DoubleNegation",
     "EVENT SEQ(SHELF_READING a, !(COUNTER_READING n), EXIT_READING b, "
     "!(BACKROOM_READING m)) WHERE a.TagId = n.TagId AND a.TagId = b.TagId "
     "AND a.TagId = m.TagId WITHIN 40",
     4, 3, 130},
    {"NegationWithFilterOnly",
     "EVENT SEQ(SHELF_READING a, !(COUNTER_READING n), EXIT_READING b) "
     "WHERE n.AreaId = 2 WITHIN 25",
     3, 3, 100},
};

class EnginePropertyTest
    : public ::testing::TestWithParam<std::tuple<PropertyCase, uint64_t>> {};

std::vector<EventPtr> RandomStream(const Catalog& catalog,
                                   const PropertyCase& pcase, uint64_t seed) {
  static const char* kTypes[] = {"SHELF_READING", "COUNTER_READING",
                                 "EXIT_READING", "BACKROOM_READING"};
  Random rng(seed);
  StreamBuilder stream(&catalog);
  Timestamp ts = 0;
  for (int i = 0; i < pcase.event_count; ++i) {
    // Occasionally repeat timestamps to exercise the strict-order rule.
    if (!rng.Bernoulli(0.2)) ts += rng.Uniform(1, 3);
    const char* type;
    if (pcase.types == 1) {
      type = "SHELF_READING";
    } else {
      type = kTypes[rng.Uniform(0, pcase.types - 1)];
    }
    stream.Add(type, ts, "T" + std::to_string(rng.Uniform(0, pcase.tag_count - 1)),
               rng.Uniform(0, 4));
  }
  return stream.events();
}

TEST_P(EnginePropertyTest, EngineMatchesReferenceUnderAllPlanOptions) {
  const auto& [pcase, seed] = GetParam();
  Catalog catalog = Catalog::RetailDemo();
  auto events = RandomStream(catalog, pcase, seed);

  auto expected = RunReference(catalog, pcase.query, events);

  for (bool push_window : {true, false}) {
    for (bool push_predicates : {true, false}) {
      for (bool use_partitioning : {true, false}) {
        PlanOptions options;
        options.push_window = push_window;
        options.push_predicates = push_predicates;
        options.use_partitioning = use_partitioning;
        auto actual = RunEngine(catalog, pcase.query, events, options);
        ASSERT_EQ(actual, expected)
            << pcase.name << " seed=" << seed << " options "
            << options.ToString() << ": engine=" << actual.size()
            << " reference=" << expected.size();
      }
    }
  }
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<PropertyCase, uint64_t>>& info) {
  return std::string(std::get<0>(info.param).name) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    RandomStreams, EnginePropertyTest,
    ::testing::Combine(::testing::ValuesIn(kCases),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    CaseName);

}  // namespace
}  // namespace sase
