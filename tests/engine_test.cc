#include "engine/query_engine.h"

#include <gtest/gtest.h>

#include "db/archiver.h"
#include "db/database.h"
#include "db/track_trace.h"
#include "test_util.h"

namespace sase {
namespace {

using testing::StreamBuilder;

class EngineTest : public ::testing::Test {
 protected:
  Catalog catalog_ = Catalog::RetailDemo();
};

TEST_F(EngineTest, RegisterRejectsBadQueries) {
  QueryEngine engine(&catalog_);
  EXPECT_FALSE(engine.Register("EVENT", nullptr).ok());            // parse error
  EXPECT_FALSE(engine.Register("EVENT NO_TYPE x", nullptr).ok());  // semantic
  EXPECT_EQ(engine.query_count(), 0u);
}

TEST_F(EngineTest, Q1EndToEndWithDatabaseLookup) {
  // The full paper Q1, including the _retrieveLocation hybrid lookup.
  db::Database database;
  db::Archiver archiver(&database);
  ASSERT_TRUE(archiver.DescribeArea(4, "the leftmost door on the south side").ok());

  QueryEngine engine(&catalog_);
  ASSERT_TRUE(archiver.RegisterFunctions(engine.functions()).ok());

  std::vector<OutputRecord> alerts;
  auto id = engine.Register(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 12 hours "
      "RETURN x.TagId, x.ProductName, z.AreaId, _retrieveLocation(z.AreaId)",
      [&alerts](const OutputRecord& record) { alerts.push_back(record); });
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 100, "LIFTED", 1, "Razor")
        .Add("SHELF_READING", 110, "PAID", 1, "Soap")
        .Add("COUNTER_READING", 150, "PAID", 3, "Soap")
        .Add("EXIT_READING", 200, "LIFTED", 4, "Razor")
        .Add("EXIT_READING", 210, "PAID", 4, "Soap");
  for (const auto& event : stream.events()) engine.OnEvent(event);
  engine.OnFlush();

  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].Get("x.TagId").AsString(), "LIFTED");
  EXPECT_EQ(alerts[0].Get("x.ProductName").AsString(), "Razor");
  EXPECT_EQ(alerts[0].Get("z.AreaId").AsInt(), 4);
  EXPECT_EQ(alerts[0].Get("_retrieveLocation(z.AreaId)").AsString(),
            "the leftmost door on the south side");
}

TEST_F(EngineTest, Q2ArchivingRuleUpdatesDatabase) {
  db::Database database;
  db::Archiver archiver(&database);
  QueryEngine engine(&catalog_);
  ASSERT_TRUE(archiver.RegisterFunctions(engine.functions()).ok());

  auto id = engine.Register(
      "EVENT SEQ(SHELF_READING x, SHELF_READING y) "
      "WHERE x.TagId = y.TagId AND x.AreaId != y.AreaId WITHIN 1 hour "
      "RETURN _updateLocation(y.TagId, y.AreaId, y.Timestamp)",
      nullptr);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 10, "ITEM", 1)
        .Add("SHELF_READING", 20, "ITEM", 2);  // moved shelf 1 -> 2
  for (const auto& event : stream.events()) engine.OnEvent(event);
  engine.OnFlush();

  db::TrackTrace trace(&database);
  auto current = trace.CurrentLocation("ITEM");
  ASSERT_TRUE(current.has_value());
  EXPECT_EQ(current->where.AsInt(), 2);
  EXPECT_EQ(current->time_in, 20);
  EXPECT_EQ(archiver.location_updates(), 1u);
}

TEST_F(EngineTest, MultipleQueriesShareTheStream) {
  QueryEngine engine(&catalog_);
  int shelf_count = 0, exit_count = 0;
  ASSERT_TRUE(engine.Register("EVENT SHELF_READING s",
                              [&](const OutputRecord&) { ++shelf_count; })
                  .ok());
  ASSERT_TRUE(engine.Register("EVENT EXIT_READING e",
                              [&](const OutputRecord&) { ++exit_count; })
                  .ok());
  EXPECT_EQ(engine.query_count(), 2u);

  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A").Add("SHELF_READING", 2, "B")
        .Add("EXIT_READING", 3, "A");
  for (const auto& event : stream.events()) engine.OnEvent(event);
  engine.OnFlush();
  EXPECT_EQ(shelf_count, 2);
  EXPECT_EQ(exit_count, 1);
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST_F(EngineTest, UnregisterStopsDelivery) {
  QueryEngine engine(&catalog_);
  int count = 0;
  auto id = engine.Register("EVENT SHELF_READING s",
                            [&](const OutputRecord&) { ++count; });
  ASSERT_TRUE(id.ok());

  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A").Add("SHELF_READING", 2, "B");
  engine.OnEvent(stream.events()[0]);
  ASSERT_TRUE(engine.Unregister(id.value()).ok());
  engine.OnEvent(stream.events()[1]);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(engine.query_count(), 0u);
  EXPECT_FALSE(engine.Unregister(id.value()).ok());  // already gone
  EXPECT_EQ(engine.plan(id.value()), nullptr);
}

TEST_F(EngineTest, WindowUnitsUseTimeConfig) {
  // With 10 ticks per second, "1 minute" is 600 ticks.
  TimeConfig config{.ticks_per_second = 10};
  QueryEngine engine(&catalog_, config);
  int count = 0;
  auto id = engine.Register(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId "
      "WITHIN 1 minutes",
      [&](const OutputRecord&) { ++count; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 0, "T").Add("EXIT_READING", 600, "T")
        .Add("SHELF_READING", 1000, "U").Add("EXIT_READING", 1700, "U");
  for (const auto& event : stream.events()) engine.OnEvent(event);
  engine.OnFlush();
  EXPECT_EQ(count, 1);  // U's span (700) exceeds the 600-tick minute
}

TEST_F(EngineTest, RepeatedTypePatternQ2Style) {
  QueryEngine engine(&catalog_);
  int count = 0;
  auto id = engine.Register(
      "EVENT SEQ(SHELF_READING x, SHELF_READING y) "
      "WHERE x.TagId = y.TagId AND x.AreaId != y.AreaId WITHIN 100",
      [&](const OutputRecord&) { ++count; });
  ASSERT_TRUE(id.ok());
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "I", 1)
        .Add("SHELF_READING", 2, "I", 1)   // same area: no match with @1
        .Add("SHELF_READING", 3, "I", 2);  // differs from both @1 and @2
  for (const auto& event : stream.events()) engine.OnEvent(event);
  engine.OnFlush();
  EXPECT_EQ(count, 2);  // (1,3) and (2,3)
}

TEST_F(EngineTest, FromClauseRoutesNamedStreams) {
  QueryEngine engine(&catalog_);
  int default_count = 0, named_count = 0;
  ASSERT_TRUE(engine.Register("EVENT SHELF_READING s",
                              [&](const OutputRecord&) { ++default_count; })
                  .ok());
  ASSERT_TRUE(engine.Register("FROM warehouse EVENT SHELF_READING s",
                              [&](const OutputRecord&) { ++named_count; })
                  .ok());

  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A").Add("SHELF_READING", 2, "B");
  engine.OnEvent(stream.events()[0]);                      // default input
  engine.OnStreamEvent("Warehouse", stream.events()[1]);   // case-insensitive
  engine.OnFlush();
  EXPECT_EQ(default_count, 1);
  EXPECT_EQ(named_count, 1);
}

TEST_F(EngineTest, TrackTraceFunctionsCallableFromQueries) {
  db::Database database;
  db::Archiver archiver(&database);
  ASSERT_TRUE(archiver.UpdateLocation("MOVED", 1, 5).ok());
  ASSERT_TRUE(archiver.UpdateLocation("MOVED", 2, 8).ok());

  QueryEngine engine(&catalog_);
  ASSERT_TRUE(archiver.RegisterFunctions(engine.functions()).ok());
  std::vector<OutputRecord> records;
  auto id = engine.Register(
      "EVENT EXIT_READING e RETURN _currentLocation(e.TagId) AS Area, "
      "_movementHistory(e.TagId) AS History",
      [&records](const OutputRecord& r) { records.push_back(r); });
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  StreamBuilder stream(&catalog_);
  stream.Add("EXIT_READING", 10, "MOVED").Add("EXIT_READING", 11, "NEVER_SEEN");
  for (const auto& event : stream.events()) engine.OnEvent(event);
  engine.OnFlush();

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].Get("Area").AsInt(), 2);
  EXPECT_NE(records[0].Get("History").AsString().find("location 1 [5, 8)"),
            std::string::npos);
  EXPECT_TRUE(records[1].Get("Area").is_null());  // unknown tag -> NULL
  EXPECT_EQ(records[1].Get("History").AsString(), "");
}

TEST_F(EngineTest, OutputStreamNaming) {
  QueryEngine engine(&catalog_);
  std::string stream_name;
  auto id = engine.Register(
      "EVENT SHELF_READING s RETURN s.TagId INTO shelf_alerts",
      [&](const OutputRecord& record) { stream_name = record.stream; });
  ASSERT_TRUE(id.ok());
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A");
  engine.OnEvent(stream.events()[0]);
  EXPECT_EQ(stream_name, "shelf_alerts");
}

}  // namespace
}  // namespace sase
