#include "core/event.h"

#include <gtest/gtest.h>

namespace sase {
namespace {

class EventTest : public ::testing::Test {
 protected:
  Catalog catalog_ = Catalog::RetailDemo();
};

TEST_F(EventTest, BuilderSetsAttributes) {
  EventBuilder builder(catalog_, "SHELF_READING");
  auto event = builder.Set("TagId", "T1").Set("AreaId", 3).Build(10, 0);
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  const EventPtr& e = event.value();
  EXPECT_EQ(e->timestamp(), 10);
  EXPECT_EQ(e->seq(), 0u);
  EXPECT_EQ(e->attribute(0).AsString(), "T1");
  EXPECT_EQ(e->attribute(1).AsInt(), 3);
  EXPECT_TRUE(e->attribute(2).is_null());  // ProductName unset
}

TEST_F(EventTest, BuilderIsCaseInsensitive) {
  EventBuilder builder(catalog_, "shelf_reading");
  auto event = builder.Set("tagid", "T").Build(0, 0);
  EXPECT_TRUE(event.ok());
}

TEST_F(EventTest, BuilderRejectsUnknownType) {
  EventBuilder builder(catalog_, "NO_SUCH_TYPE");
  auto event = builder.Build(0, 0);
  EXPECT_FALSE(event.ok());
  EXPECT_EQ(event.status().code(), StatusCode::kNotFound);
}

TEST_F(EventTest, BuilderRejectsUnknownAttribute) {
  EventBuilder builder(catalog_, "SHELF_READING");
  auto event = builder.Set("Nope", 1).Build(0, 0);
  EXPECT_FALSE(event.ok());
}

TEST_F(EventTest, BuilderRejectsTypeMismatch) {
  EventBuilder builder(catalog_, "SHELF_READING");
  auto event = builder.Set("TagId", 42).Build(0, 0);  // STRING attr, INT value
  EXPECT_FALSE(event.ok());
}

TEST_F(EventTest, BuilderRejectsTimestampViaSet) {
  EventBuilder builder(catalog_, "SHELF_READING");
  auto event = builder.Set("Timestamp", 1).Build(0, 0);
  EXPECT_FALSE(event.ok());
}

TEST_F(EventTest, TimestampVirtualAttribute) {
  EventBuilder builder(catalog_, "EXIT_READING");
  auto event = builder.Set("TagId", "T").Build(77, 5);
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event.value()->attribute(kTimestampAttr).AsInt(), 77);
}

TEST_F(EventTest, ToStringIncludesTypeAndAttributes) {
  EventBuilder builder(catalog_, "SHELF_READING");
  auto event =
      builder.Set("TagId", "T9").Set("AreaId", 1).Set("ProductName", "Soap")
          .Build(5, 0);
  ASSERT_TRUE(event.ok());
  std::string s = event.value()->ToString(catalog_);
  EXPECT_NE(s.find("SHELF_READING@5"), std::string::npos);
  EXPECT_NE(s.find("TagId=T9"), std::string::npos);
  EXPECT_NE(s.find("ProductName=Soap"), std::string::npos);
}

TEST_F(EventTest, EarlierThanOrdersByTimestampThenSeq) {
  EventBuilder b1(catalog_, "SHELF_READING");
  auto e1 = b1.Set("TagId", "A").Build(5, 0).value();
  EventBuilder b2(catalog_, "SHELF_READING");
  auto e2 = b2.Set("TagId", "B").Build(5, 1).value();
  EventBuilder b3(catalog_, "SHELF_READING");
  auto e3 = b3.Set("TagId", "C").Build(6, 2).value();
  EXPECT_TRUE(EarlierThan(*e1, *e2));   // same ts, lower seq
  EXPECT_FALSE(EarlierThan(*e2, *e1));
  EXPECT_TRUE(EarlierThan(*e2, *e3));   // lower ts
}

}  // namespace
}  // namespace sase
