#include "query/expr.h"

#include <gtest/gtest.h>

#include "engine/function_registry.h"
#include "query/analyzer.h"
#include "query/parser.h"

namespace sase {
namespace {

/// Evaluates a constant expression (no variables) through the parser.
Result<Value> EvalConst(const std::string& text,
                        const FunctionRegistry* functions = nullptr) {
  auto expr = Parser::ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  BindingVec no_bindings;
  EvalContext ctx{&no_bindings, functions};
  return expr.value()->Eval(ctx);
}

Value MustEval(const std::string& text) {
  auto result = EvalConst(text);
  EXPECT_TRUE(result.ok()) << text << " -> " << result.status().ToString();
  return result.ok() ? result.value() : Value();
}

TEST(ExprTest, IntegerArithmetic) {
  EXPECT_EQ(MustEval("1 + 2 * 3").AsInt(), 7);
  EXPECT_EQ(MustEval("10 - 4 - 3").AsInt(), 3);    // left associative
  EXPECT_EQ(MustEval("7 / 2").AsInt(), 3);         // integer division
  EXPECT_EQ(MustEval("7 % 3").AsInt(), 1);
  EXPECT_EQ(MustEval("-(3 + 4)").AsInt(), -7);
  EXPECT_EQ(MustEval("2 * (3 + 4)").AsInt(), 14);
}

TEST(ExprTest, MixedNumericPromotesToDouble) {
  Value v = MustEval("1 + 2.5");
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(MustEval("7.0 / 2").AsDouble(), 3.5);
}

TEST(ExprTest, DivisionAndModuloByZeroAreErrors) {
  EXPECT_FALSE(EvalConst("1 / 0").ok());
  EXPECT_FALSE(EvalConst("1 % 0").ok());
  EXPECT_FALSE(EvalConst("1.0 / 0.0").ok());
}

TEST(ExprTest, StringConcatenationViaPlus) {
  EXPECT_EQ(MustEval("'ab' + 'cd'").AsString(), "abcd");
  EXPECT_FALSE(EvalConst("'ab' - 'cd'").ok());
}

TEST(ExprTest, Comparisons) {
  EXPECT_TRUE(MustEval("1 < 2").AsBool());
  EXPECT_TRUE(MustEval("2 <= 2").AsBool());
  EXPECT_FALSE(MustEval("2 > 2").AsBool());
  EXPECT_TRUE(MustEval("2 >= 2").AsBool());
  EXPECT_TRUE(MustEval("1 = 1.0").AsBool());   // cross-numeric equality
  EXPECT_TRUE(MustEval("'a' != 'b'").AsBool());
  EXPECT_TRUE(MustEval("'a' < 'b'").AsBool());
  EXPECT_FALSE(EvalConst("'a' < 1").ok());     // incomparable
}

TEST(ExprTest, NullComparisonsAreFalse) {
  EXPECT_FALSE(MustEval("NULL = NULL").AsBool());
  EXPECT_FALSE(MustEval("NULL != 1").AsBool());
  EXPECT_FALSE(MustEval("NULL < 1").AsBool());
}

TEST(ExprTest, LogicalOperatorsShortCircuit) {
  EXPECT_TRUE(MustEval("TRUE OR FALSE").AsBool());
  EXPECT_FALSE(MustEval("TRUE AND FALSE").AsBool());
  EXPECT_TRUE(MustEval("NOT FALSE").AsBool());
  // Short circuit: the division by zero on the right is never evaluated.
  EXPECT_FALSE(MustEval("FALSE AND 1 / 0 = 1").AsBool());
  EXPECT_TRUE(MustEval("TRUE OR 1 / 0 = 1").AsBool());
  // Without short circuit, the error surfaces.
  EXPECT_FALSE(EvalConst("TRUE AND 1 / 0 = 1").ok());
}

TEST(ExprTest, LogicalOperatorsRequireBool) {
  EXPECT_FALSE(EvalConst("1 AND TRUE").ok());
  EXPECT_FALSE(EvalConst("NOT 3").ok());
}

TEST(ExprTest, UnaryMinusRequiresNumeric) {
  EXPECT_FALSE(EvalConst("-'abc'").ok());
  EXPECT_DOUBLE_EQ(MustEval("-2.5").AsDouble(), -2.5);
}

TEST(ExprTest, FunctionCalls) {
  FunctionRegistry functions;
  functions.RegisterCommon();
  auto v = EvalConst("_concat('x', 1 + 2)", &functions);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().AsString(), "x3");
  // No registry available -> clean error.
  EXPECT_FALSE(EvalConst("_concat('x')").ok());
}

TEST(ExprTest, EvalPredicateCoercion) {
  auto expr = Parser::ParseExpression("1 < 2").value();
  BindingVec no_bindings;
  EvalContext ctx{&no_bindings, nullptr};
  EXPECT_TRUE(EvalPredicate(*expr, ctx).value());

  // Non-boolean predicate is an error.
  auto arith = Parser::ParseExpression("1 + 2").value();
  EXPECT_FALSE(EvalPredicate(*arith, ctx).ok());

  // NULL-valued predicate fails (doesn't pass).
  auto null_expr = Parser::ParseExpression("NULL").value();
  EXPECT_FALSE(EvalPredicate(*null_expr, ctx).value());
}

TEST(ExprTest, FlattenConjuncts) {
  auto expr =
      Parser::ParseExpression("1 = 1 AND 2 = 2 AND (3 = 3 OR 4 = 4)").value();
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(expr, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[2]->ToString(), "((3 = 3) OR (4 = 4))");
  // Null expression -> empty.
  std::vector<ExprPtr> none;
  FlattenConjuncts(nullptr, &none);
  EXPECT_TRUE(none.empty());
}

TEST(ExprTest, UnboundVariableIsInternalError) {
  auto expr = Parser::ParseExpression("x.TagId = 'T'").value();
  BindingVec no_bindings;
  EvalContext ctx{&no_bindings, nullptr};
  auto result = expr->Eval(ctx);
  EXPECT_FALSE(result.ok());  // unresolved variable reference
}

TEST(ExprTest, CollectSlotsAfterResolution) {
  Catalog catalog = Catalog::RetailDemo();
  auto parsed = Parser::Parse(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId AND x.AreaId < 3");
  Analyzer analyzer(&catalog, TimeConfig{});
  AnalyzedQuery query = analyzer.Analyze(std::move(parsed).value()).value();
  std::set<int> slots;
  query.parsed.where->CollectSlots(&slots);
  EXPECT_EQ(slots, (std::set<int>{0, 1}));
}

TEST(ExprTest, AggregateEvalOutsideTransformationFails) {
  auto parsed = Parser::ParseExpression("COUNT(*)");
  ASSERT_TRUE(parsed.ok());
  BindingVec no_bindings;
  EvalContext ctx{&no_bindings, nullptr};
  EXPECT_FALSE(parsed.value()->Eval(ctx).ok());
}

TEST(ExprTest, ContainsAggregateDetection) {
  EXPECT_TRUE(Parser::ParseExpression("SUM(x.A) / COUNT(*)").value()->ContainsAggregate());
  EXPECT_TRUE(Parser::ParseExpression("_f(MAX(x.A))").value()->ContainsAggregate());
  EXPECT_TRUE(Parser::ParseExpression("-MIN(x.A)").value()->ContainsAggregate());
  EXPECT_FALSE(Parser::ParseExpression("x.A + 1").value()->ContainsAggregate());
}

}  // namespace
}  // namespace sase
