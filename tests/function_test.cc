#include "engine/function_registry.h"

#include <gtest/gtest.h>

namespace sase {
namespace {

TEST(FunctionRegistryTest, RegisterAndInvoke) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry
                  .Register("double", 1,
                            [](const std::vector<Value>& args) -> Result<Value> {
                              return Value(args[0].AsInt() * 2);
                            })
                  .ok());
  EXPECT_TRUE(registry.Has("double"));
  EXPECT_TRUE(registry.Has("DOUBLE"));  // case-insensitive
  auto result = registry.Invoke("Double", {Value(21)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().AsInt(), 42);
}

TEST(FunctionRegistryTest, DuplicateRegistrationRejected) {
  FunctionRegistry registry;
  auto fn = [](const std::vector<Value>&) -> Result<Value> { return Value(1); };
  ASSERT_TRUE(registry.Register("f", 0, fn).ok());
  EXPECT_FALSE(registry.Register("F", 0, fn).ok());
}

TEST(FunctionRegistryTest, UnknownFunction) {
  FunctionRegistry registry;
  auto result = registry.Invoke("nothere", {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(FunctionRegistryTest, ArityEnforced) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry
                  .Register("two", 2,
                            [](const std::vector<Value>&) -> Result<Value> {
                              return Value(0);
                            })
                  .ok());
  EXPECT_FALSE(registry.Invoke("two", {Value(1)}).ok());
  EXPECT_TRUE(registry.Invoke("two", {Value(1), Value(2)}).ok());
}

TEST(FunctionRegistryTest, VariadicArity) {
  FunctionRegistry registry;
  registry.RegisterCommon();
  EXPECT_EQ(registry.Invoke("_concat", {}).value().AsString(), "");
  EXPECT_EQ(
      registry.Invoke("_concat", {Value("a"), Value(1), Value(true)}).value().AsString(),
      "a1TRUE");
}

TEST(FunctionRegistryTest, CommonFunctions) {
  FunctionRegistry registry;
  registry.RegisterCommon();
  EXPECT_EQ(registry.Invoke("_abs", {Value(-5)}).value().AsInt(), 5);
  EXPECT_DOUBLE_EQ(registry.Invoke("_abs", {Value(-2.5)}).value().AsDouble(), 2.5);
  EXPECT_FALSE(registry.Invoke("_abs", {Value("x")}).ok());
  EXPECT_EQ(registry.Invoke("_length", {Value("abcd")}).value().AsInt(), 4);
  EXPECT_EQ(registry.Invoke("_upper", {Value("aBc")}).value().AsString(), "ABC");
  EXPECT_EQ(registry.Invoke("_lower", {Value("aBc")}).value().AsString(), "abc");
  EXPECT_EQ(
      registry.Invoke("_if", {Value(true), Value(1), Value(2)}).value().AsInt(), 1);
  EXPECT_EQ(
      registry.Invoke("_if", {Value(false), Value(1), Value(2)}).value().AsInt(), 2);
  EXPECT_FALSE(registry.Invoke("_if", {Value(1), Value(1), Value(2)}).ok());
}

TEST(FunctionRegistryTest, FunctionNamesSorted) {
  FunctionRegistry registry;
  registry.RegisterCommon();
  auto names = registry.FunctionNames();
  EXPECT_GE(names.size(), 6u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

}  // namespace
}  // namespace sase
