#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace sase {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  EXPECT_NEAR(h.Percentile(50), 42.0, 42.0 * 0.5);  // within the bucket
}

TEST(HistogramTest, MinMeanMaxExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  Random rng(3);
  for (int i = 0; i < 10000; ++i) h.Record(rng.Uniform(0, 100000));
  double last = -1;
  for (double q : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    double v = h.Percentile(q);
    EXPECT_GE(v, last) << "q=" << q;
    last = v;
  }
  EXPECT_LE(h.Percentile(100), static_cast<double>(h.max()));
  EXPECT_GE(h.Percentile(0), static_cast<double>(h.min()));
}

TEST(HistogramTest, PercentileApproximationBounded) {
  // Log-bucketing guarantees at most 2x relative error above 1.
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(1000);
  double p50 = h.Percentile(50);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 2000.0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 50; ++i) a.Record(10);
  for (int i = 0; i < 50; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_DOUBLE_EQ(a.mean(), 505.0);
  // Merging an empty histogram is a no-op.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 100u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, ToStringMentionsFields) {
  Histogram h;
  h.Record(1);
  h.Record(100);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=2"), std::string::npos);
  EXPECT_NE(s.find("min=1"), std::string::npos);
  EXPECT_NE(s.find("max=100"), std::string::npos);
}

}  // namespace
}  // namespace sase
