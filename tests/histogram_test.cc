#include "util/histogram.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/random.h"

namespace sase {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  EXPECT_NEAR(h.Percentile(50), 42.0, 42.0 * 0.5);  // within the bucket
}

TEST(HistogramTest, MinMeanMaxExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  Random rng(3);
  for (int i = 0; i < 10000; ++i) h.Record(rng.Uniform(0, 100000));
  double last = -1;
  for (double q : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    double v = h.Percentile(q);
    EXPECT_GE(v, last) << "q=" << q;
    last = v;
  }
  EXPECT_LE(h.Percentile(100), static_cast<double>(h.max()));
  EXPECT_GE(h.Percentile(0), static_cast<double>(h.min()));
}

TEST(HistogramTest, PercentileApproximationBounded) {
  // Log-bucketing guarantees at most 2x relative error above 1.
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(1000);
  double p50 = h.Percentile(50);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 2000.0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 50; ++i) a.Record(10);
  for (int i = 0; i < 50; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_DOUBLE_EQ(a.mean(), 505.0);
  // Merging an empty histogram is a no-op.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 100u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, BucketIndexIsLogarithmic) {
  EXPECT_EQ(Histogram::BucketIndex(-3), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  // Doubling a value moves it at most one bucket up.
  for (int64_t v = 1; v < (int64_t{1} << 40); v *= 2) {
    EXPECT_EQ(Histogram::BucketIndex(v * 2), Histogram::BucketIndex(v) + 1);
  }
  // Huge values cap at the last bucket rather than overflowing.
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<int64_t>::max()),
            Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, BucketUpperBoundMatchesIndex) {
  // Every value in bucket i must satisfy value <= BucketUpperBound(i), and
  // the bound of bucket i-1 must exclude it — that makes cumulative
  // `le=<bound>` bucket lines (Prometheus) correct.
  for (int64_t v : {0, 1, 2, 3, 4, 5, 7, 8, 100, 1023, 1024, 1 << 20}) {
    size_t i = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(i)) << "v=" << v;
    if (i > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(i - 1)) << "v=" << v;
    }
  }
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            std::numeric_limits<int64_t>::max());
}

TEST(HistogramTest, MergeBucketsFromRawCells) {
  // MergeBuckets folds an externally-maintained bucket array (e.g. a
  // wait-free metric cell) into a Histogram, matching direct recording.
  Histogram direct;
  uint64_t raw[Histogram::kNumBuckets] = {};
  uint64_t count = 0;
  double sum = 0;
  int64_t min = 0, max = 0;
  Random rng(7);
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.Uniform(0, 1 << 20);
    direct.Record(v);
    ++raw[Histogram::BucketIndex(v)];
    if (count == 0 || v < min) min = v;
    if (count == 0 || v > max) max = v;
    ++count;
    sum += static_cast<double>(v);
  }
  Histogram merged;
  merged.MergeBuckets(raw, Histogram::kNumBuckets, count, min, max, sum);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.min(), direct.min());
  EXPECT_EQ(merged.max(), direct.max());
  EXPECT_DOUBLE_EQ(merged.mean(), direct.mean());
  EXPECT_EQ(merged.buckets(), direct.buckets());
  EXPECT_DOUBLE_EQ(merged.Percentile(95), direct.Percentile(95));
  // Zero-count merges are no-ops even with nonzero extrema arguments.
  Histogram untouched;
  untouched.MergeBuckets(raw, Histogram::kNumBuckets, 0, 5, 10, 100.0);
  EXPECT_EQ(untouched.count(), 0u);
}

TEST(HistogramTest, QuantileMatchesPercentile) {
  Histogram h;
  Random rng(11);
  for (int i = 0; i < 5000; ++i) h.Record(rng.Uniform(0, 1 << 16));
  for (double q : {0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q / 100.0), h.Percentile(q)) << "q=" << q;
  }
  // Out-of-range fractions clamp rather than wrap or extrapolate.
  EXPECT_DOUBLE_EQ(h.Quantile(-0.5), h.Percentile(0));
  EXPECT_DOUBLE_EQ(h.Quantile(1.5), h.Percentile(100));
}

TEST(HistogramTest, QuantileOnEmptyHistogramIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
}

TEST(HistogramTest, QuantileAfterMerge) {
  // Quantiles of a merged histogram reflect the combined distribution:
  // with half the mass at 10 and half at 1000, the quartiles straddle it.
  Histogram a, b;
  for (int i = 0; i < 500; ++i) a.Record(10);
  for (int i = 0; i < 500; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_LE(a.Quantile(0.25), 16.0);     // low half's bucket
  EXPECT_GE(a.Quantile(0.99), 512.0);    // high half's bucket
  EXPECT_GE(a.Quantile(0.99), a.Quantile(0.25));
  // Merging an empty histogram leaves quantiles untouched.
  double before = a.Quantile(0.5);
  Histogram empty;
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), before);
}

TEST(HistogramTest, ToStringMentionsFields) {
  Histogram h;
  h.Record(1);
  h.Record(100);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=2"), std::string::npos);
  EXPECT_NE(s.find("min=1"), std::string::npos);
  EXPECT_NE(s.find("max=100"), std::string::npos);
}

}  // namespace
}  // namespace sase
