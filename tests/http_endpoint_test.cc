// Embedded HTTP endpoint tests: every scrape goes over a real loopback
// socket — /metrics must match WritePrometheus byte-for-byte, /healthz must
// flip to 503 on a wedged runtime, /statusz serves the cached status page.

#include "obs/http_endpoint.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rfid/workload.h"
#include "runtime/sharded_runtime.h"
#include "system/sase_system.h"

namespace sase {
namespace {

struct HttpResponse {
  int status = 0;
  std::string headers;
  std::string body;
};

/// Blocking one-shot HTTP client: connects to 127.0.0.1:`port`, sends one
/// request line, reads to EOF (the endpoint answers `Connection: close`).
HttpResponse Get(int port, const std::string& path,
                 const std::string& method = "GET") {
  HttpResponse response;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return response;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return response;
  }
  std::string request = method + " " + path + " HTTP/1.1\r\nHost: l\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.1 <status> ...\r\n<headers>\r\n\r\n<body>"
  size_t sp = raw.find(' ');
  if (sp != std::string::npos) response.status = std::atoi(raw.c_str() + sp + 1);
  size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) {
    response.headers = raw.substr(0, split);
    response.body = raw.substr(split + 4);
  }
  return response;
}

std::vector<EventPtr> Trace(const Catalog& catalog, int64_t count) {
  SyntheticConfig config;
  config.seed = 23;
  config.event_count = count;
  config.tag_count = 20;
  config.area_count = 4;
  SyntheticStreamGenerator generator(&catalog, config);
  return generator.Generate();
}

// --- bare endpoint ----------------------------------------------------------

TEST(HttpEndpointTest, ServesHandlersAnd404AndMethodCheck) {
  obs::HttpEndpoint endpoint;
  endpoint.Handle("/ping", [] {
    return obs::HttpEndpoint::Response{200, "text/plain; charset=utf-8",
                                       "pong\n"};
  });
  ASSERT_TRUE(endpoint.Start(0).ok());
  ASSERT_GT(endpoint.port(), 0);

  HttpResponse ok = Get(endpoint.port(), "/ping");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "pong\n");
  EXPECT_NE(ok.headers.find("Content-Length: 5"), std::string::npos);

  // Query strings are stripped before handler lookup.
  EXPECT_EQ(Get(endpoint.port(), "/ping?verbose=1").status, 200);

  HttpResponse missing = Get(endpoint.port(), "/nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("/metrics"), std::string::npos);

  EXPECT_EQ(Get(endpoint.port(), "/ping", "POST").status, 405);

  // HEAD answers the status with an empty body.
  HttpResponse head = Get(endpoint.port(), "/ping", "HEAD");
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty());

  EXPECT_EQ(endpoint.requests_served(), 5u);
  endpoint.Stop();
  EXPECT_FALSE(endpoint.running());
  endpoint.Stop();  // idempotent
}

TEST(HttpEndpointTest, ClientDisconnectMidResponseDoesNotKillServer) {
  obs::HttpEndpoint endpoint;
  // Large enough that the response cannot fit in the kernel's socket
  // buffers: the serve thread is still send()ing when the peer vanishes.
  std::string big(8 * 1024 * 1024, 'x');
  endpoint.Handle("/big", [&big] {
    return obs::HttpEndpoint::Response{200, "text/plain; charset=utf-8", big};
  });
  ASSERT_TRUE(endpoint.Start(0).ok());

  // Request the large body and abort the connection without reading it:
  // the server's next write lands on a dead socket. With a raw write(2)
  // that raised SIGPIPE on the serve thread and killed the process; with
  // send(MSG_NOSIGNAL) it surfaces as EPIPE/ECONNRESET and the response is
  // abandoned.
  for (int round = 0; round < 3; ++round) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    int tiny = 4096;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(endpoint.port()));
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    std::string request = "GET /big HTTP/1.1\r\nHost: l\r\n\r\n";
    ASSERT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    // Read a sliver so the response is in flight, then close with a
    // zero-linger RST instead of a graceful FIN — the abort makes the
    // server's in-progress send() error out rather than buffer away.
    char buf[1024];
    (void)!::read(fd, buf, sizeof(buf));
    struct linger abort_on_close = {1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_on_close,
                 sizeof(abort_on_close));
    ::close(fd);
  }

  // The endpoint survived all three aborted scrapes: a patient client still
  // gets the full body.
  HttpResponse after = Get(endpoint.port(), "/big");
  EXPECT_EQ(after.status, 200);
  EXPECT_EQ(after.body.size(), big.size());
  endpoint.Stop();
}

TEST(HttpEndpointTest, DoubleStartIsRefused) {
  obs::HttpEndpoint endpoint;
  ASSERT_TRUE(endpoint.Start(0).ok());
  EXPECT_FALSE(endpoint.Start(0).ok());
  endpoint.Stop();
}

// --- system wiring ----------------------------------------------------------

TEST(HttpEndpointTest, MetricsScrapeMatchesWritePrometheusByteForByte) {
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = 2;
  config.obs.http_port = -1;  // ephemeral
  SaseSystem system(StoreLayout::RetailDemo(), config);
  ASSERT_GT(system.http_port(), 0);

  auto id = system.RegisterMonitoringQuery(
      "pairs",
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 50 RETURN x.TagId",
      nullptr);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  Catalog catalog = Catalog::RetailDemo();
  for (const EventPtr& event : Trace(catalog, 400)) {
    system.event_bus().OnEvent(event);
  }
  system.Flush();
  system.ScrapeMetrics();

  std::string path = ::testing::TempDir() + "/http_endpoint_scrape.prom";
  ASSERT_TRUE(system.metrics()->WritePrometheus(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::stringstream file;
  file << in.rdbuf();

  HttpResponse scraped = Get(system.http_port(), "/metrics");
  EXPECT_EQ(scraped.status, 200);
  EXPECT_NE(scraped.headers.find("text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_EQ(scraped.body, file.str());
  EXPECT_FALSE(scraped.body.empty());
  EXPECT_NE(scraped.body.find("sase_query_events_seen_total"),
            std::string::npos);
}

TEST(HttpEndpointTest, HealthzAndStatuszOnLiveSystem) {
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = 2;
  config.obs.http_port = -1;
  SaseSystem system(StoreLayout::RetailDemo(), config);
  ASSERT_GT(system.http_port(), 0);

  HttpResponse health = Get(system.http_port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  // Before the first scrape /statusz explains how to populate itself.
  HttpResponse empty = Get(system.http_port(), "/statusz");
  EXPECT_EQ(empty.status, 200);
  EXPECT_NE(empty.body.find("no status captured yet"), std::string::npos);

  auto id = system.RegisterMonitoringQuery(
      "shelves", "EVENT SHELF_READING s WHERE s.AreaId = 2 RETURN s.TagId",
      nullptr);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  Catalog catalog = Catalog::RetailDemo();
  for (const EventPtr& event : Trace(catalog, 200)) {
    system.event_bus().OnEvent(event);
  }
  system.Flush();
  system.ScrapeMetrics();

  HttpResponse status = Get(system.http_port(), "/statusz");
  EXPECT_EQ(status.status, 200);
  EXPECT_NE(status.body.find("queries: 1 registered"), std::string::npos);
  EXPECT_NE(status.body.find("name=shelves"), std::string::npos);
  EXPECT_NE(status.body.find("per-query operator latency"), std::string::npos);
  // The fleet view rides along (shard/key skew lives there).
  EXPECT_NE(status.body.find("shard-0"), std::string::npos);
}

TEST(HttpEndpointTest, DisabledWithoutPortOrMetrics) {
  {
    SystemConfig config;
    config.noise = NoiseModel::Perfect();
    SaseSystem system(StoreLayout::RetailDemo(), config);  // http_port = 0
    EXPECT_EQ(system.http_port(), 0);
  }
  {
    SystemConfig config;
    config.noise = NoiseModel::Perfect();
    config.obs.metrics_enabled = false;
    config.obs.http_port = -1;  // ignored: the endpoint needs a registry
    SaseSystem system(StoreLayout::RetailDemo(), config);
    EXPECT_EQ(system.http_port(), 0);
  }
}

// --- wedge detection --------------------------------------------------------

TEST(HttpEndpointTest, HealthzFlipsTo503OnWedgedRuntime) {
  Catalog catalog = Catalog::RetailDemo();
  std::atomic<bool> release{false};
  RuntimeConfig config;
  config.shard_count = 2;
  config.batch_size = 1;  // one event per batch: later batches queue up
  ShardedRuntime runtime(&catalog, config, [&release](QueryEngine& engine) {
    (void)engine.functions()->Register(
        "_stall", 1, [&release](const std::vector<Value>&) -> Result<Value> {
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          return Value(static_cast<int64_t>(1));
        });
  });
  auto id = runtime.Register(
      "EVENT SHELF_READING s WHERE _stall(s.AreaId) = 1 RETURN s.TagId",
      [](const OutputRecord&) {});
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  obs::HttpEndpoint endpoint;
  endpoint.Handle("/healthz", [&runtime] {
    std::string why;
    if (!runtime.Healthy(/*stall_ns=*/2'000'000, &why)) {
      return obs::HttpEndpoint::Response{503, "text/plain; charset=utf-8",
                                         "unhealthy: " + why + "\n"};
    }
    return obs::HttpEndpoint::Response{200, "text/plain; charset=utf-8",
                                       "ok\n"};
  });
  ASSERT_TRUE(endpoint.Start(0).ok());

  // An idle runtime is healthy.
  EXPECT_EQ(Get(endpoint.port(), "/healthz").status, 200);

  // Feed a handful of events; the hosting worker blocks inside _stall on
  // the first one and the rest sit in its queue.
  std::vector<EventPtr> trace = Trace(catalog, 50);
  for (size_t i = 0; i < 8; ++i) runtime.OnEvent(trace[i]);

  // The first probe of a stuck worker only arms its stall clock; poll until
  // the wedge is declared (bounded — the stall threshold is 2ms).
  HttpResponse wedged;
  for (int attempt = 0; attempt < 200; ++attempt) {
    wedged = Get(endpoint.port(), "/healthz");
    if (wedged.status == 503) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(wedged.status, 503);
  EXPECT_NE(wedged.body.find("wedged"), std::string::npos);

  // Unblock before teardown: the runtime destructor joins its workers.
  release.store(true, std::memory_order_release);
  runtime.WaitIdle();

  // Drained again: healthy (possibly after the probe re-arms).
  HttpResponse healed;
  for (int attempt = 0; attempt < 200; ++attempt) {
    healed = Get(endpoint.port(), "/healthz");
    if (healed.status == 200) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(healed.status, 200);
  endpoint.Stop();
}

}  // namespace
}  // namespace sase
