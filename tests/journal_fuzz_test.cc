// Robustness property for the write-ahead journal: no sequence of disk
// damage — bit flips, truncations, garbage tails, overwritten runs — may
// ever crash the reader or make it silently misparse a record. Every scan
// of a damaged epoch must stop cleanly at the last valid record: whatever
// it returns is byte-equal to records the writer actually appended, in
// order. The suite runs under ASan+UBSan in CI's sanitize job, so an
// out-of-bounds read in the frame decoder fails loudly here.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "checkpoint/journal.h"
#include "core/catalog.h"
#include "core/event.h"
#include "util/random.h"

namespace sase {
namespace checkpoint {
namespace {

constexpr uint64_t kEpoch = 7;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/sase_journal_fuzz_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

EventPtr MakeEvent(const Catalog& catalog, const std::string& type,
                   Timestamp ts, SequenceNumber seq, const std::string& tag) {
  EventBuilder builder(catalog, type);
  auto event =
      builder.Set("TagId", tag).Set("AreaId", 3).Set("ProductName", "Soap")
          .Build(ts, seq);
  EXPECT_TRUE(event.ok()) << event.status().ToString();
  return event.value();
}

/// Writes a multi-segment journal exercising all six record kinds,
/// including batched ack-cursor commits.
void BuildPristineJournal(const Catalog& catalog, const std::string& dir) {
  auto journal =
      EventJournal::Open(dir, kEpoch, 0, /*rotate_bytes=*/256,
                         FsyncPolicy::kNever);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EventJournal& writer = *journal.value();
  writer.set_ack_commit_interval(2);
  ASSERT_TRUE(writer.AppendRegister(false, "exits",
                                    "EVENT EXIT_READING e RETURN e.TagId").ok());
  for (int i = 0; i < 12; ++i) {
    EventPtr event = MakeEvent(catalog, i % 3 == 0 ? "EXIT_READING"
                                                   : "SHELF_READING",
                               i, static_cast<SequenceNumber>(i),
                               "TAG|" + std::to_string(i));
    ASSERT_TRUE(writer.AppendEvent(i % 4 == 0 ? "sensors" : "", *event).ok());
    if (i % 3 == 2) {
      ASSERT_TRUE(writer.AppendOutputMark(static_cast<uint64_t>(i), 1).ok());
      ASSERT_TRUE(
          writer.AppendAckCursor(static_cast<uint64_t>(i) / 2, 1).ok());
    }
  }
  ASSERT_TRUE(writer.CommitAcks().ok());
  ASSERT_TRUE(writer.AppendFlush().ok());
  ASSERT_GT(writer.rotations(), 2u) << "fuzz corpus should span segments";
}

std::vector<std::pair<std::string, std::string>> SnapshotFiles(
    const std::string& dir) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.emplace_back(entry.path().string(), std::move(buffer).str());
  }
  std::sort(files.begin(), files.end());
  return files;
}

void RestoreFiles(
    const std::string& dir,
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (const auto& [path, bytes] : files) {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
}

bool RecordsEqual(const JournalRecord& a, const JournalRecord& b) {
  return a.kind == b.kind && a.stream == b.stream && a.type == b.type &&
         a.timestamp == b.timestamp && a.seq == b.seq && a.values == b.values &&
         a.delivered_runtime == b.delivered_runtime &&
         a.delivered_serial == b.delivered_serial &&
         a.acked_runtime == b.acked_runtime &&
         a.acked_serial == b.acked_serial && a.archiving == b.archiving &&
         a.name == b.name && a.text == b.text;
}

/// The no-silent-misparse property: every record a damaged scan returns is
/// field-equal to a record the writer appended, in the original order (the
/// scan yields a contiguous prefix, possibly followed — when a segment was
/// cut exactly at a record boundary — by a contiguous later run).
bool IsOrderedSubsequence(const std::vector<JournalRecord>& scanned,
                          const std::vector<JournalRecord>& baseline) {
  size_t next = 0;
  for (const JournalRecord& record : scanned) {
    while (next < baseline.size() && !RecordsEqual(record, baseline[next])) {
      ++next;
    }
    if (next == baseline.size()) return false;
    ++next;
  }
  return true;
}

class JournalFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JournalFuzzTest, DamagedJournalsAlwaysStopCleanly) {
  Catalog catalog = Catalog::RetailDemo();
  std::string dir =
      FreshDir("seed" + std::to_string(GetParam()));
  BuildPristineJournal(catalog, dir);

  auto pristine = ReadJournal(dir, kEpoch);
  ASSERT_TRUE(pristine.ok()) << pristine.status().ToString();
  ASSERT_FALSE(pristine.value().truncated)
      << pristine.value().truncation_reason;
  const std::vector<JournalRecord> baseline =
      std::move(pristine.value().records);
  ASSERT_GE(baseline.size(), 15u);
  const auto files = SnapshotFiles(dir);
  ASSERT_GT(files.size(), 3u);

  Random rng(GetParam() * 6151);
  for (int iteration = 0; iteration < 150; ++iteration) {
    RestoreFiles(dir, files);
    const auto& [path, bytes] =
        files[static_cast<size_t>(rng.Uniform(
            0, static_cast<int64_t>(files.size()) - 1))];
    std::string damaged = bytes;
    const int64_t mutation = rng.Uniform(0, 3);
    // Flips and overwrites always change bytes inside a valid frame or
    // header, so those scans MUST report truncation; a boundary-exact
    // truncate can legally read clean, so only the subsequence property is
    // asserted for it.
    bool must_truncate = mutation == 0 || mutation == 3;
    switch (mutation) {
      case 0: {  // single bit flip
        size_t at = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(damaged.size()) - 1));
        damaged[at] = static_cast<char>(
            damaged[at] ^ static_cast<char>(1 << rng.Uniform(0, 7)));
        break;
      }
      case 1: {  // truncation
        damaged.resize(static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(damaged.size()) - 1)));
        break;
      }
      case 2: {  // garbage appended past the tail
        int64_t extra = rng.Uniform(1, 64);
        for (int64_t i = 0; i < extra; ++i) {
          damaged.push_back(static_cast<char>(rng.Uniform(0, 255)));
        }
        must_truncate = true;
        break;
      }
      default: {  // overwrite a short run with different bytes
        size_t at = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(damaged.size()) - 1));
        size_t run = std::min(
            damaged.size() - at, static_cast<size_t>(rng.Uniform(1, 16)));
        for (size_t i = 0; i < run; ++i) {
          damaged[at + i] = static_cast<char>(
              damaged[at + i] ^ static_cast<char>(rng.Uniform(1, 255)));
        }
        break;
      }
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
    }

    auto scan = ReadJournal(dir, kEpoch);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    EXPECT_LE(scan.value().records.size(), baseline.size());
    EXPECT_TRUE(IsOrderedSubsequence(scan.value().records, baseline))
        << "iteration " << iteration << " misparsed a record (mutation "
        << mutation << " on " << path << ")";
    if (must_truncate) {
      EXPECT_TRUE(scan.value().truncated)
          << "iteration " << iteration << ": mutation " << mutation << " on "
          << path << " went undetected";
    }
    if (scan.value().truncated) {
      EXPECT_FALSE(scan.value().truncation_reason.empty());
      // Repair must make the epoch scannable end-to-end again, and what the
      // repaired scan reads is still only genuine records.
      RepairJournal(dir, kEpoch, scan.value());
      auto repaired = ReadJournal(dir, kEpoch);
      ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
      EXPECT_FALSE(repaired.value().truncated)
          << "iteration " << iteration
          << ": repair left the journal unscannable: "
          << repaired.value().truncation_reason;
      EXPECT_TRUE(IsOrderedSubsequence(repaired.value().records, baseline));
      // Repairing a clean scan is the documented no-op.
      EXPECT_EQ(RepairJournal(dir, kEpoch, repaired.value()),
                repaired.value().next_segment);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

/// Group-commit crash window (WAL group commit, set_group_commit): the
/// writer is killed inside the batch-open -> fsync window — destroyed
/// without Sync(), deliberately the destructor's behavior — and power loss
/// is simulated by truncating the live segment to the fsynced frontier
/// (synced_segment_bytes). The records a post-crash scan reads must be
/// exactly the writer's durable_records() claim: every record covered by a
/// completed group fsync survives, and nothing past the last fsynced group
/// was ever claimed durable.
class GroupCommitCrashTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupCommitCrashTest, DurableClaimMatchesSurvivingPrefixExactly) {
  Catalog catalog = Catalog::RetailDemo();
  const uint64_t seed = GetParam();
  Random rng(seed * 7919);
  std::string dir = FreshDir("group_crash_seed" + std::to_string(seed));

  const uint64_t interval = static_cast<uint64_t>(rng.Uniform(2, 9));
  const uint64_t appends = static_cast<uint64_t>(rng.Uniform(1, 40));
  // Small rotate size on some seeds: rotation seals (syncs) old segments,
  // so the open group only ever spans the live segment.
  const uint64_t rotate = rng.Uniform(0, 1) == 0 ? 512 : 64ull << 20;

  uint64_t durable = 0, unsynced = 0, commits = 0, synced_bytes = 0,
           live_segment = 0;
  {
    auto journal =
        EventJournal::Open(dir, kEpoch, 0, rotate, FsyncPolicy::kAlways);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    EventJournal& writer = *journal.value();
    writer.set_group_commit(interval, /*max_delay_us=*/0);
    for (uint64_t i = 0; i < appends; ++i) {
      EventPtr event =
          MakeEvent(catalog, "SHELF_READING", static_cast<Timestamp>(i),
                    static_cast<SequenceNumber>(i),
                    "TAG" + std::to_string(i));
      ASSERT_TRUE(writer.AppendEvent("", *event).ok());
    }
    durable = writer.durable_records();
    unsynced = writer.unsynced_records();
    commits = writer.group_commits();
    synced_bytes = writer.synced_segment_bytes();
    live_segment = writer.segment();

    // Accounting invariants at the kill point: every record is either
    // durable or in the open group, and the open group is smaller than one
    // interval (else it would have committed).
    EXPECT_EQ(durable + unsynced, appends);
    EXPECT_LT(unsynced, interval);
    EXPECT_GE(durable, commits);  // each completed fsync covered >= 1 record
    // Killed here: the destructor does NOT close the open group.
  }

  // The full scan before damage is the baseline: write(2) landed every
  // record, so all of them are readable while the page cache survives.
  auto full = ReadJournal(dir, kEpoch);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_FALSE(full.value().truncated) << full.value().truncation_reason;
  ASSERT_EQ(full.value().records.size(), appends);

  // Power loss: everything in the live segment past the fsynced frontier
  // vanishes. (Sealed segments were synced at rotation; only the live one
  // can hold unsynced bytes.)
  std::string live_path =
      dir + "/" + SegmentFileName(kEpoch, live_segment);
  if (synced_bytes == 0) {
    // No fsync ever covered this segment: not even its header is durable.
    std::filesystem::remove(live_path);
  } else {
    std::filesystem::resize_file(live_path, synced_bytes);
  }

  auto scan = ReadJournal(dir, kEpoch);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan.value().records.size(), durable)
      << "post-crash scan disagrees with the durability claim (interval="
      << interval << " appends=" << appends << " rotate=" << rotate << ")";
  for (size_t i = 0; i < scan.value().records.size(); ++i) {
    EXPECT_TRUE(RecordsEqual(scan.value().records[i], full.value().records[i]))
        << "surviving record " << i << " differs from what was appended";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupCommitCrashTest,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u, 17u,
                                           18u, 19u, 20u));

/// The commit-latency bound: with a huge interval and a tiny max delay, the
/// group must still close — enforced at the next append once the bound has
/// elapsed — so a quiet-but-not-idle writer cannot hold records hostage.
TEST(GroupCommitDelayTest, MaxDelayClosesAnUndersizedGroup) {
  Catalog catalog = Catalog::RetailDemo();
  std::string dir = FreshDir("group_delay");
  auto journal =
      EventJournal::Open(dir, kEpoch, 0, 64ull << 20, FsyncPolicy::kAlways);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EventJournal& writer = *journal.value();
  writer.set_group_commit(/*interval=*/1000000, /*max_delay_us=*/1000);

  EventPtr first = MakeEvent(catalog, "SHELF_READING", 1, 1, "TAG1");
  ASSERT_TRUE(writer.AppendEvent("", *first).ok());
  EXPECT_EQ(writer.durable_records(), 0u) << "group committed far too early";
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EventPtr second = MakeEvent(catalog, "SHELF_READING", 2, 2, "TAG2");
  ASSERT_TRUE(writer.AppendEvent("", *second).ok());
  EXPECT_GE(writer.durable_records(), 1u)
      << "max_delay_us did not force the group fsync at the next append";
  EXPECT_GE(writer.group_commits(), 1u);
}

}  // namespace
}  // namespace checkpoint
}  // namespace sase
