#include "query/lexer.h"

#include <gtest/gtest.h>

namespace sase {
namespace {

std::vector<Token> MustTokenize(const std::string& text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return std::move(tokens).value();
}

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> kinds;
  for (const auto& token : tokens) kinds.push_back(token.kind);
  return kinds;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = MustTokenize("EVENT event Event SEQ seq where WITHIN return");
  auto kinds = Kinds(tokens);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kEvent, TokenKind::kEvent, TokenKind::kEvent,
                       TokenKind::kSeq, TokenKind::kSeq, TokenKind::kWhere,
                       TokenKind::kWithin, TokenKind::kReturn, TokenKind::kEnd}));
}

TEST(LexerTest, IdentifiersIncludingUnderscorePrefix) {
  auto tokens = MustTokenize("_retrieveLocation SHELF_READING x");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "_retrieveLocation");
  EXPECT_EQ(tokens[1].text, "SHELF_READING");
  EXPECT_EQ(tokens[2].text, "x");
}

TEST(LexerTest, NumberLiterals) {
  auto tokens = MustTokenize("12 3.5 0 12.0");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[0].int_value, 12);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.5);
  EXPECT_EQ(tokens[2].int_value, 0);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 12.0);
}

TEST(LexerTest, StringLiteralsBothQuotes) {
  auto tokens = MustTokenize("'abc' \"def\" 'with \\'escape\\''");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "abc");
  EXPECT_EQ(tokens[1].text, "def");
  EXPECT_EQ(tokens[2].text, "with 'escape'");
}

TEST(LexerTest, UnterminatedStringFails) {
  Lexer lexer("'oops");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto kinds = Kinds(MustTokenize("( ) , . ! = != <> < <= > >= + - * / %"));
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kLParen, TokenKind::kRParen, TokenKind::kComma,
                       TokenKind::kDot, TokenKind::kBang, TokenKind::kEq,
                       TokenKind::kNeq, TokenKind::kNeq, TokenKind::kLt,
                       TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
                       TokenKind::kPlus, TokenKind::kMinus, TokenKind::kStar,
                       TokenKind::kSlash, TokenKind::kPercent, TokenKind::kEnd}));
}

TEST(LexerTest, PaperUnicodeConnectives) {
  // Q1's WHERE clause uses the mathematical AND: x.TagId = y.TagId ∧ ...
  auto kinds = Kinds(MustTokenize("a.b = c.d \xE2\x88\xA7 e.f = g.h"));
  int and_count = 0;
  for (auto kind : kinds) {
    if (kind == TokenKind::kAnd) ++and_count;
  }
  EXPECT_EQ(and_count, 1);

  auto or_tokens = MustTokenize("\xE2\x88\xA8");
  EXPECT_EQ(or_tokens[0].kind, TokenKind::kOr);
  auto not_tokens = MustTokenize("\xC2\xAC");
  EXPECT_EQ(not_tokens[0].kind, TokenKind::kNot);
}

TEST(LexerTest, AsciiConnectives) {
  auto kinds = Kinds(MustTokenize("a.b && c.d || NOT e.f AND g.h OR i.j"));
  int ands = 0, ors = 0, nots = 0;
  for (auto kind : kinds) {
    if (kind == TokenKind::kAnd) ++ands;
    if (kind == TokenKind::kOr) ++ors;
    if (kind == TokenKind::kNot) ++nots;
  }
  EXPECT_EQ(ands, 2);
  EXPECT_EQ(ors, 2);
  EXPECT_EQ(nots, 1);
}

TEST(LexerTest, LineCommentsSkipped) {
  auto tokens = MustTokenize("EVENT -- this is a comment\n SEQ");
  EXPECT_EQ(tokens[0].kind, TokenKind::kEvent);
  EXPECT_EQ(tokens[1].kind, TokenKind::kSeq);
}

TEST(LexerTest, TracksLineAndColumn) {
  auto tokens = MustTokenize("EVENT\n  SEQ");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, RejectsStrayCharacters) {
  Lexer lexer("EVENT @ SEQ");
  auto tokens = lexer.Tokenize();
  EXPECT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("line 1"), std::string::npos);
}

}  // namespace
}  // namespace sase
