#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace sase {
namespace obs {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, SetIsTheScrapeMirroredBase) {
  Counter counter;
  counter.Set(100);
  EXPECT_EQ(counter.Value(), 100u);
  // Value() = base + striped increments; Set overwrites only the base.
  counter.Add(5);
  counter.Set(200);
  EXPECT_EQ(counter.Value(), 205u);
}

TEST(CounterTest, ConcurrentAddsDoNotLoseIncrements) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), uint64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Set(-5);
  EXPECT_EQ(gauge.Value(), -5);
}

TEST(HistogramMetricTest, AggregateMatchesDirectHistogram) {
  HistogramMetric metric;
  Histogram direct;
  for (int64_t v : {0, 1, 5, 100, 1000, 1 << 20}) {
    metric.Record(v);
    direct.Record(v);
  }
  Histogram aggregated = metric.Aggregate();
  EXPECT_EQ(aggregated.count(), direct.count());
  EXPECT_EQ(aggregated.min(), direct.min());
  EXPECT_EQ(aggregated.max(), direct.max());
  EXPECT_DOUBLE_EQ(aggregated.mean(), direct.mean());
  EXPECT_EQ(aggregated.buckets(), direct.buckets());
}

TEST(HistogramMetricTest, ConcurrentRecordsAllLand) {
  HistogramMetric metric;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metric, t] {
      for (int i = 0; i < kPerThread; ++i) metric.Record(t * 1000 + i);
    });
  }
  for (auto& thread : threads) thread.join();
  Histogram aggregated = metric.Aggregate();
  EXPECT_EQ(aggregated.count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(aggregated.min(), 0);
  EXPECT_EQ(aggregated.max(), (kThreads - 1) * 1000 + kPerThread - 1);
}

TEST(MetricsRegistryTest, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("sase_a_total");
  Counter* b = registry.GetCounter("sase_b_total");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.GetCounter("sase_a_total"), a);
  EXPECT_EQ(registry.GetGauge("sase_g"), registry.GetGauge("sase_g"));
  EXPECT_EQ(registry.GetHistogram("sase_h_ns"),
            registry.GetHistogram("sase_h_ns"));
}

TEST(MetricsRegistryTest, NamesListRegisteredMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("sase_events_total{shard=\"0\"}");
  registry.GetCounter("sase_events_total{shard=\"1\"}");
  registry.GetGauge("sase_depth");
  registry.GetHistogram("sase_lat_ns");
  EXPECT_EQ(registry.CounterNames().size(), 2u);
  EXPECT_EQ(registry.GaugeNames().size(), 1u);
  EXPECT_EQ(registry.HistogramNames().size(), 1u);
}

TEST(MetricsRegistryTest, RenderPrometheusCountersAndGauges) {
  MetricsRegistry registry;
  registry.GetCounter("sase_events_total{shard=\"0\"}")->Add(7);
  registry.GetCounter("sase_events_total{shard=\"1\"}")->Add(9);
  registry.GetGauge("sase_shards")->Set(2);
  std::string text = registry.RenderPrometheus();
  // One TYPE line per family, not per labeled series.
  EXPECT_NE(text.find("# TYPE sase_events_total counter\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE sase_events_total counter",
                      text.find("# TYPE sase_events_total counter") + 1),
            std::string::npos);
  EXPECT_NE(text.find("sase_events_total{shard=\"0\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("sase_events_total{shard=\"1\"} 9\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sase_shards gauge\n"), std::string::npos);
  EXPECT_NE(text.find("sase_shards 2\n"), std::string::npos);
}

TEST(MetricsRegistryTest, RenderPrometheusHistogramSeries) {
  MetricsRegistry registry;
  HistogramMetric* hist = registry.GetHistogram("sase_lat_ns");
  hist->Record(1);
  hist->Record(3);
  hist->Record(1000);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE sase_lat_ns histogram\n"), std::string::npos);
  // Cumulative le buckets: value 1 lands in le="1", 3 in le="3" (bucket
  // [2,4) upper bound), everything in +Inf.
  EXPECT_NE(text.find("sase_lat_ns_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("sase_lat_ns_bucket{le=\"3\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("sase_lat_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("sase_lat_ns_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("sase_lat_ns_sum 1004\n"), std::string::npos);
}

TEST(MetricsRegistryTest, LabeledHistogramSplicesLeIntoLabels) {
  MetricsRegistry registry;
  registry.GetHistogram("sase_wait_ns{shard=\"2\"}")->Record(5);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE sase_wait_ns histogram\n"), std::string::npos);
  EXPECT_NE(text.find("sase_wait_ns_bucket{shard=\"2\",le=\"7\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("sase_wait_ns_count{shard=\"2\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, EveryLineIsTypeCommentOrSample) {
  MetricsRegistry registry;
  registry.GetCounter("sase_a_total")->Add(1);
  registry.GetGauge("sase_b{x=\"y\"}")->Set(2);
  registry.GetHistogram("sase_c_ns")->Record(10);
  std::istringstream in(registry.RenderPrometheus());
  std::string line;
  int samples = 0;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0) continue;
    // Sample line: "<name-with-optional-labels> <value>".
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    EXPECT_LT(space + 1, line.size()) << line;
    ++samples;
  }
  EXPECT_GT(samples, 4);  // counter + gauge + buckets + sum + count
}

TEST(MetricsRegistryTest, WritePrometheusRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("sase_a_total")->Add(3);
  std::string path = ::testing::TempDir() + "metrics_test_scrape.prom";
  ASSERT_TRUE(registry.WritePrometheus(path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), registry.RenderPrometheus());
  std::remove(path.c_str());
}

TEST(SpliceLabelTest, UnlabeledAndLabeledNames) {
  EXPECT_EQ(SpliceLabel("m", "le=\"5\""), "m{le=\"5\"}");
  EXPECT_EQ(SpliceLabel("m{a=\"1\"}", "le=\"5\""), "m{a=\"1\",le=\"5\"}");
}

}  // namespace
}  // namespace obs
}  // namespace sase
