#include "engine/negation.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sase {
namespace {

using testing::RunEngine;
using testing::RunReference;
using testing::StreamBuilder;

class NegationTest : public ::testing::Test {
 protected:
  Catalog catalog_ = Catalog::RetailDemo();
};

// The paper's Q1 shoplifting pattern (no RETURN so outputs identify
// matches).
const char* kShoplifting =
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100";

TEST_F(NegationTest, ShopliftingDetected) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "STOLEN")
        .Add("EXIT_READING", 5, "STOLEN");
  auto out = RunEngine(catalog_, kShoplifting, stream.events());
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(NegationTest, CheckoutSuppressesAlert) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "PAID")
        .Add("COUNTER_READING", 3, "PAID")
        .Add("EXIT_READING", 5, "PAID");
  auto out = RunEngine(catalog_, kShoplifting, stream.events());
  EXPECT_TRUE(out.empty());
}

TEST_F(NegationTest, OtherTagsCheckoutDoesNotSuppress) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "STOLEN")
        .Add("COUNTER_READING", 3, "INNOCENT")  // different tag
        .Add("EXIT_READING", 5, "STOLEN");
  auto out = RunEngine(catalog_, kShoplifting, stream.events());
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(NegationTest, CounterOutsideIntervalDoesNotSuppress) {
  StreamBuilder stream(&catalog_);
  stream.Add("COUNTER_READING", 1, "T")  // before the shelf reading
        .Add("SHELF_READING", 2, "T")
        .Add("EXIT_READING", 5, "T")
        .Add("COUNTER_READING", 7, "T");  // after the exit reading
  auto out = RunEngine(catalog_, kShoplifting, stream.events());
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(NegationTest, CounterAtBoundaryTimestampsExcluded) {
  // Negation interval is strictly between the neighbours' timestamps.
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 2, "T")
        .Add("COUNTER_READING", 2, "T")  // same tick as shelf: not "after"
        .Add("EXIT_READING", 5, "T")
        .Add("COUNTER_READING", 5, "T");  // same tick as exit (arrives later)
  auto out = RunEngine(catalog_, kShoplifting, stream.events());
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(NegationTest, NegationFilterOnNegatedVariable) {
  // Only counter readings in area 7 suppress.
  const char* query =
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = z.TagId AND y.AreaId = 7 WITHIN 100";
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "T")
        .Add("COUNTER_READING", 2, "IGNORED", /*area=*/3)  // wrong area
        .Add("EXIT_READING", 5, "T");
  EXPECT_EQ(RunEngine(catalog_, query, stream.events()).size(), 1u);

  StreamBuilder stream2(&catalog_);
  stream2.Add("SHELF_READING", 1, "T")
         .Add("COUNTER_READING", 2, "ANY", /*area=*/7)  // right area
         .Add("EXIT_READING", 5, "T");
  EXPECT_TRUE(RunEngine(catalog_, query, stream2.events()).empty());
}

TEST_F(NegationTest, TailNegationDefersUntilWindowCloses) {
  // SEQ(SHELF x, !(COUNTER y)): alert only if no checkout follows within
  // the window.
  const char* query =
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 10";
  {
    // Checkout arrives inside the window: suppressed.
    StreamBuilder stream(&catalog_);
    stream.Add("SHELF_READING", 1, "T")
          .Add("COUNTER_READING", 5, "T")
          .Add("SHELF_READING", 50, "OTHER");  // watermark pusher
    EXPECT_EQ(RunEngine(catalog_, query, stream.events()).size(), 1u)
        << "only the watermark-pushing shelf event should match";
  }
  {
    // No checkout: the shelf event matches once the window passes.
    StreamBuilder stream(&catalog_);
    stream.Add("SHELF_READING", 1, "T")
          .Add("COUNTER_READING", 20, "T")  // outside window
          .Add("SHELF_READING", 50, "OTHER");
    EXPECT_EQ(RunEngine(catalog_, query, stream.events()).size(), 2u);
  }
}

TEST_F(NegationTest, TailNegationReleasedAtFlush) {
  const char* query =
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 10";
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "T");  // stream ends immediately after
  auto out = RunEngine(catalog_, query, stream.events());
  EXPECT_EQ(out.size(), 1u);  // flush releases the pending match
}

TEST_F(NegationTest, HeadNegation) {
  // SEQ(!(SHELF y), EXIT z): exit with no shelf reading of the same tag in
  // the preceding window.
  const char* query =
      "EVENT SEQ(!(SHELF_READING y), EXIT_READING z) "
      "WHERE y.TagId = z.TagId WITHIN 10";
  {
    StreamBuilder stream(&catalog_);
    stream.Add("SHELF_READING", 5, "T").Add("EXIT_READING", 8, "T");
    EXPECT_TRUE(RunEngine(catalog_, query, stream.events()).empty());
  }
  {
    // Shelf reading too old (outside the window before the exit).
    StreamBuilder stream(&catalog_);
    stream.Add("SHELF_READING", 1, "T").Add("EXIT_READING", 20, "T");
    EXPECT_EQ(RunEngine(catalog_, query, stream.events()).size(), 1u);
  }
}

TEST_F(NegationTest, MultipleNegations) {
  const char* query =
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z, "
      "!(BACKROOM_READING w)) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId AND x.TagId = w.TagId "
      "WITHIN 20";
  {
    StreamBuilder stream(&catalog_);
    stream.Add("SHELF_READING", 1, "T")
          .Add("EXIT_READING", 5, "T")
          .Add("SHELF_READING", 60, "OTHER2");  // watermark
    // No counter, no backroom -> match (plus nothing for OTHER2).
    EXPECT_EQ(RunEngine(catalog_, query, stream.events()).size(), 1u);
  }
  {
    StreamBuilder stream(&catalog_);
    stream.Add("SHELF_READING", 1, "T")
          .Add("EXIT_READING", 5, "T")
          .Add("BACKROOM_READING", 10, "T")  // tail negation violated
          .Add("SHELF_READING", 60, "OTHER2");
    EXPECT_TRUE(RunEngine(catalog_, query, stream.events()).empty());
  }
}

TEST_F(NegationTest, MatchesReferenceOnNegationStream) {
  StreamBuilder stream(&catalog_);
  Random rng(99);
  Timestamp ts = 0;
  for (int i = 0; i < 120; ++i) {
    ts += rng.Uniform(1, 2);
    int pick = static_cast<int>(rng.Uniform(0, 2));
    const char* type = pick == 0 ? "SHELF_READING"
                                 : (pick == 1 ? "COUNTER_READING" : "EXIT_READING");
    stream.Add(type, ts, "T" + std::to_string(rng.Uniform(0, 3)));
  }
  EXPECT_EQ(RunEngine(catalog_, kShoplifting, stream.events()),
            RunReference(catalog_, kShoplifting, stream.events()));
}

TEST_F(NegationTest, PartitionedNegationMatchesUnpartitioned) {
  StreamBuilder stream(&catalog_);
  Random rng(7);
  Timestamp ts = 0;
  for (int i = 0; i < 150; ++i) {
    ts += rng.Uniform(1, 3);
    int pick = static_cast<int>(rng.Uniform(0, 2));
    const char* type = pick == 0 ? "SHELF_READING"
                                 : (pick == 1 ? "COUNTER_READING" : "EXIT_READING");
    stream.Add(type, ts, "T" + std::to_string(rng.Uniform(0, 5)));
  }
  PlanOptions partitioned;
  PlanOptions flat;
  flat.use_partitioning = false;
  EXPECT_EQ(RunEngine(catalog_, kShoplifting, stream.events(), partitioned),
            RunEngine(catalog_, kShoplifting, stream.events(), flat));
}

}  // namespace
}  // namespace sase
