#include "nfa/nfa.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace sase {
namespace {

class NfaTest : public ::testing::Test {
 protected:
  AnalyzedQuery Analyze(const std::string& text) {
    auto parsed = Parser::Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    Analyzer analyzer(&catalog_, TimeConfig{});
    auto analyzed = analyzer.Analyze(std::move(parsed).value());
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    return std::move(analyzed).value();
  }

  Catalog catalog_ = Catalog::RetailDemo();
};

TEST_F(NfaTest, CompilesChainOfPositives) {
  AnalyzedQuery q = Analyze(
      "EVENT SEQ(SHELF_READING x, COUNTER_READING y, EXIT_READING z)");
  Nfa nfa = Nfa::Compile(q, true, true);
  EXPECT_EQ(nfa.edge_count(), 3u);
  EXPECT_EQ(nfa.state_count(), 4u);
  EXPECT_EQ(nfa.edge(0).type, catalog_.FindType("SHELF_READING").value());
  EXPECT_EQ(nfa.edge(0).slot, 0);
  EXPECT_EQ(nfa.edge(2).slot, 2);
}

TEST_F(NfaTest, NegatedComponentsAreExcluded) {
  AnalyzedQuery q = Analyze(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WITHIN 10");
  Nfa nfa = Nfa::Compile(q, true, true);
  EXPECT_EQ(nfa.edge_count(), 2u);       // only positives
  EXPECT_EQ(nfa.edge(1).slot, 2);        // z keeps its pattern slot
}

TEST_F(NfaTest, StatesForTypeHandlesRepeatedTypes) {
  AnalyzedQuery q = Analyze("EVENT SEQ(SHELF_READING x, SHELF_READING y)");
  Nfa nfa = Nfa::Compile(q, true, true);
  EventTypeId shelf = catalog_.FindType("SHELF_READING").value();
  EXPECT_EQ(nfa.StatesForType(shelf), (std::vector<int>{0, 1}));
  EventTypeId exit = catalog_.FindType("EXIT_READING").value();
  EXPECT_TRUE(nfa.StatesForType(exit).empty());
  EXPECT_TRUE(nfa.StatesForType(kInvalidEventType).empty());
}

TEST_F(NfaTest, EdgeFiltersFollowPushdownFlag) {
  AnalyzedQuery q = Analyze(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.AreaId = 1");
  Nfa with = Nfa::Compile(q, /*push_edge_filters=*/true, true);
  EXPECT_EQ(with.edge(0).filters.size(), 1u);
  Nfa without = Nfa::Compile(q, /*push_edge_filters=*/false, true);
  EXPECT_TRUE(without.edge(0).filters.empty());
}

TEST_F(NfaTest, PartitionAttrsFollowPartitioningFlag) {
  AnalyzedQuery q = Analyze(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId");
  Nfa with = Nfa::Compile(q, true, /*use_partitioning=*/true);
  EXPECT_TRUE(with.partitioned());
  EXPECT_NE(with.edge(0).partition_attr, kInvalidAttr);
  Nfa without = Nfa::Compile(q, true, /*use_partitioning=*/false);
  EXPECT_FALSE(without.partitioned());
  EXPECT_EQ(without.edge(0).partition_attr, kInvalidAttr);
}

TEST_F(NfaTest, ToStringShowsStructure) {
  AnalyzedQuery q = Analyze(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId");
  Nfa nfa = Nfa::Compile(q, true, true);
  std::string s = nfa.ToString(catalog_);
  EXPECT_NE(s.find("S0 --SHELF_READING"), std::string::npos);
  EXPECT_NE(s.find("accepting: S2"), std::string::npos);
  EXPECT_NE(s.find("key=TagId"), std::string::npos);
}

}  // namespace
}  // namespace sase
