// Metrics-vs-truth differential tests: every scrape-mirrored metric the
// registry exposes must equal the source-of-truth counter it mirrors — at
// 1 (serial), 2 and 8 shards, and across a checkpoint-kill-recover cycle.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "rfid/workload.h"
#include "runtime/partitioner.h"
#include "system/sase_system.h"
#include "test_util.h"

namespace sase {
namespace {

const std::vector<std::string> kQueries = {
    // Key-partitioned pattern: runtime-shardable.
    "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
    "WHERE x.TagId = z.TagId WITHIN 50 RETURN x.TagId",
    // Stateless projection.
    "EVENT SHELF_READING s WHERE s.AreaId = 2 RETURN s.TagId",
};

std::vector<EventPtr> Trace(const Catalog& catalog, int64_t count) {
  SyntheticConfig config;
  config.seed = 11;
  config.event_count = count;
  config.tag_count = 30;
  config.area_count = 4;
  SyntheticStreamGenerator generator(&catalog, config);
  return generator.Generate();
}

/// Sample lines of a Prometheus text exposition: "<series> <value>".
std::map<std::string, double> ParseProm(const std::string& text) {
  std::map<std::string, double> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }
  return samples;
}

/// Sum of every series whose name starts with `prefix` (labeled families).
double SumFamily(const std::map<std::string, double>& samples,
                 const std::string& prefix) {
  double total = 0;
  for (const auto& [name, value] : samples) {
    if (name.rfind(prefix, 0) == 0) total += value;
  }
  return total;
}

double At(const std::map<std::string, double>& samples,
          const std::string& name) {
  auto it = samples.find(name);
  EXPECT_NE(it, samples.end()) << "missing series: " << name;
  return it == samples.end() ? -1 : it->second;
}

void CheckMetricsAgainstTruth(int shards) {
  SCOPED_TRACE("shards=" + std::to_string(shards));
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = shards;
  config.runtime_merge_interval = 64;

  SaseSystem system(StoreLayout::RetailDemo(), config);
  size_t delivered = 0;
  for (size_t q = 0; q < kQueries.size(); ++q) {
    auto id = system.RegisterMonitoringQuery(
        "q" + std::to_string(q), kQueries[q],
        [&delivered](const OutputRecord&) { ++delivered; });
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }

  Catalog catalog = Catalog::RetailDemo();
  std::vector<EventPtr> trace = Trace(catalog, 600);
  for (const EventPtr& event : trace) system.event_bus().OnEvent(event);
  system.Flush();

  ASSERT_NE(system.metrics(), nullptr);
  system.ScrapeMetrics();
  std::map<std::string, double> samples =
      ParseProm(system.metrics()->RenderPrometheus());

  // The serial engine sees every bus event regardless of hosting.
  EXPECT_EQ(At(samples, "sase_engine_events_total{host=\"serial\"}"),
            static_cast<double>(system.engine().Stats().events_processed));
  EXPECT_EQ(At(samples, "sase_engine_events_total{host=\"serial\"}"),
            static_cast<double>(trace.size()));

  // Per-query outputs across all hosts == records actually delivered.
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(SumFamily(samples, "sase_query_outputs_total"),
            static_cast<double>(delivered));
  EXPECT_EQ(SumFamily(samples, "sase_query_outputs_total"),
            static_cast<double>(system.records_delivered()));
  EXPECT_EQ(SumFamily(samples, "sase_query_errors_total"), 0.0);

  // Operator wall-time histograms saw one sample per (query, event) pair.
  EXPECT_GT(SumFamily(samples, "sase_query_op_latency_ns_count"), 0.0);

  if (shards >= 2) {
    ASSERT_NE(system.runtime(), nullptr);
    EXPECT_EQ(At(samples, "sase_runtime_events_dispatched_total"),
              static_cast<double>(trace.size()));
    EXPECT_EQ(At(samples, "sase_runtime_shards"),
              static_cast<double>(shards));
    EXPECT_EQ(At(samples, "sase_stream_events_total{stream=\"<default>\"}"),
              static_cast<double>(trace.size()));
    // Quiesced scrape: nothing pending in the merger.
    EXPECT_EQ(At(samples, "sase_runtime_merge_pending"), 0.0);
    // Runtime-hosted queries delivered through the merger.
    EXPECT_EQ(At(samples, "sase_runtime_records_merged_total"),
              static_cast<double>(delivered));
  } else {
    EXPECT_EQ(system.runtime(), nullptr);
  }

  // Counter/gauge scrapes are idempotent while the stream is quiet (the
  // quiesce itself pushes flush batches through the rings, so live latency
  // histograms may pick up samples — exclude those families).
  std::vector<std::string> histogram_families;
  for (const std::string& name : system.metrics()->HistogramNames()) {
    histogram_families.push_back(name.substr(0, name.find('{')));
  }
  auto without_histograms = [&histogram_families](
                                const std::map<std::string, double>& all) {
    std::map<std::string, double> filtered;
    for (const auto& [name, value] : all) {
      bool histogram = false;
      for (const std::string& family : histogram_families) {
        if (name.rfind(family, 0) == 0) {
          histogram = true;
          break;
        }
      }
      if (!histogram) filtered[name] = value;
    }
    return filtered;
  };
  system.ScrapeMetrics();
  std::map<std::string, double> first = without_histograms(samples);
  std::map<std::string, double> second =
      without_histograms(ParseProm(system.metrics()->RenderPrometheus()));
  ASSERT_EQ(first.size(), second.size());
  for (const auto& [name, value] : first) {
    // Watermark lag and queue depth are instantaneous pre-quiesce samples
    // (the scrape's own drain traffic moves them); only mirrored counters
    // and settled gauges are idempotent.
    if (name == "sase_runtime_merge_watermark_lag" ||
        name.rfind("sase_shard_queue_len", 0) == 0 ||
        name.rfind("sase_partition_hotkey_queue_lag", 0) == 0) {
      continue;
    }
    ASSERT_NE(second.find(name), second.end()) << name;
    EXPECT_EQ(second.at(name), value) << name;
  }
}

TEST(ObsIntegrationTest, MetricsMatchTruthSerial) {
  CheckMetricsAgainstTruth(1);
}

TEST(ObsIntegrationTest, MetricsMatchTruthTwoShards) {
  CheckMetricsAgainstTruth(2);
}

TEST(ObsIntegrationTest, MetricsMatchTruthEightShards) {
  CheckMetricsAgainstTruth(8);
}

TEST(ObsIntegrationTest, MetricsDisabledMeansNoRegistry) {
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.obs.metrics_enabled = false;
  config.shard_count = 2;
  SaseSystem system(StoreLayout::RetailDemo(), config);
  EXPECT_EQ(system.metrics(), nullptr);
  auto id = system.RegisterMonitoringQuery("q", kQueries[0], nullptr);
  ASSERT_TRUE(id.ok());
  Catalog catalog = Catalog::RetailDemo();
  for (const EventPtr& event : Trace(catalog, 100)) {
    system.event_bus().OnEvent(event);
  }
  system.Flush();
  system.ScrapeMetrics();  // no-op, must not crash
}

TEST(ObsIntegrationTest, StateGaugesDecayAfterWindowExpirySerial) {
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  SaseSystem system(StoreLayout::RetailDemo(), config);
  auto id = system.RegisterMonitoringQuery(
      "theft",
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 50 "
      "RETURN x.TagId",
      nullptr);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Open scan state (shelf readings with no exits) and negation candidates
  // (counter readings) across many partitions.
  Catalog catalog = Catalog::RetailDemo();
  testing::StreamBuilder stream(&catalog);
  for (int i = 0; i < 40; ++i) {
    stream.Add("SHELF_READING", 10 + i, "tag-" + std::to_string(i), 1);
    stream.Add("COUNTER_READING", 11 + i, "tag-" + std::to_string(i), 2);
  }
  for (const EventPtr& event : stream.events()) {
    system.event_bus().OnEvent(event);
  }
  system.ScrapeMetrics();
  auto loaded = ParseProm(system.metrics()->RenderPrometheus());
  EXPECT_GT(SumFamily(loaded, "sase_query_scan_instances"), 0.0);
  EXPECT_GT(SumFamily(loaded, "sase_query_scan_partitions"), 0.0);
  EXPECT_GT(SumFamily(loaded, "sase_query_scan_state_bytes"), 0.0);
  EXPECT_GT(SumFamily(loaded, "sase_query_negation_buffer"), 0.0);
  double negation_bytes = SumFamily(loaded, "sase_query_negation_state_bytes");
  EXPECT_GT(negation_bytes, 0.0);

  // Quiescent stream, watermark past every horizon (scan W, negation 2W):
  // the state-size gauges return to ~0 — the partitioned scan releases
  // everything, the negation buffers keep only their empty vector shells.
  Timestamp last = stream.events().back()->timestamp();
  system.engine().OnWatermark(last + 2 * 50 + 2);
  system.ScrapeMetrics();
  auto drained = ParseProm(system.metrics()->RenderPrometheus());
  EXPECT_EQ(SumFamily(drained, "sase_query_scan_instances"), 0.0);
  EXPECT_EQ(SumFamily(drained, "sase_query_scan_partitions"), 0.0);
  EXPECT_EQ(SumFamily(drained, "sase_query_scan_state_bytes"), 0.0);
  EXPECT_EQ(SumFamily(drained, "sase_query_negation_buffer"), 0.0);
  EXPECT_EQ(SumFamily(drained, "sase_query_negation_pending"), 0.0);
  EXPECT_LT(SumFamily(drained, "sase_query_negation_state_bytes"),
            negation_bytes);
}

TEST(ObsIntegrationTest, StateGaugesDecayAfterWindowExpirySharded) {
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = 4;
  config.runtime_merge_interval = 16;
  SaseSystem system(StoreLayout::RetailDemo(), config);
  auto id = system.RegisterMonitoringQuery("pairs", kQueries[0], nullptr);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  Catalog catalog = Catalog::RetailDemo();
  testing::StreamBuilder stream(&catalog);
  for (int i = 0; i < 60; ++i) {
    stream.Add("SHELF_READING", 10 + i, "tag-" + std::to_string(i), 1);
  }
  for (const EventPtr& event : stream.events()) {
    system.event_bus().OnEvent(event);
  }
  system.ScrapeMetrics();
  auto loaded = ParseProm(system.metrics()->RenderPrometheus());
  EXPECT_GT(SumFamily(loaded, "sase_query_scan_instances"), 0.0);
  EXPECT_GT(SumFamily(loaded, "sase_query_scan_state_bytes"), 0.0);

  // One clock-advancing event of a type the query ignores: the quiesce
  // inside the next scrape broadcasts the new stream clock to every worker,
  // whose engines prune the expired window state.
  stream.Add("COUNTER_READING", 10 + 59 + 2 * 50 + 2, "clock", 3);
  system.event_bus().OnEvent(stream.events().back());
  system.ScrapeMetrics();
  auto drained = ParseProm(system.metrics()->RenderPrometheus());
  EXPECT_EQ(SumFamily(drained, "sase_query_scan_instances"), 0.0);
  EXPECT_EQ(SumFamily(drained, "sase_query_scan_partitions"), 0.0);
  EXPECT_EQ(SumFamily(drained, "sase_query_scan_state_bytes"), 0.0);
}

TEST(ObsIntegrationTest, HotKeyAccountingSurfacesSkew) {
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = 4;
  SaseSystem system(StoreLayout::RetailDemo(), config);
  auto id = system.RegisterMonitoringQuery("pairs", kQueries[0], nullptr);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // 90%-hot key: 9 of every 10 events carry tag HOT, the rest rotate over
  // 50 cold tags (more keys than the 16 sketch slots, so eviction happens).
  Catalog catalog = Catalog::RetailDemo();
  testing::StreamBuilder stream(&catalog);
  constexpr int kEvents = 10000;
  int cold = 0;
  for (int i = 0; i < kEvents; ++i) {
    std::string tag =
        i % 10 == 9 ? "cold-" + std::to_string(cold++ % 50) : "HOT";
    stream.Add("SHELF_READING", 1 + i / 100, tag, 1);
  }
  for (const EventPtr& event : stream.events()) {
    system.event_bus().OnEvent(event);
  }
  system.Flush();
  system.ScrapeMetrics();
  auto samples = ParseProm(system.metrics()->RenderPrometheus());

  EXPECT_EQ(At(samples, "sase_partition_keyed_events_total{stream=\"<default>\"}"),
            static_cast<double>(kEvents));
  const std::string hot_labels = "{stream=\"<default>\",key=\"HOT\"}";
  // Space-saving guarantee: the sketch count is within its error bound of
  // the true frequency, and a 90% key cannot be evicted — its observed
  // share lands within +-5 percentage points of the true 90%.
  double hot_events =
      At(samples, "sase_partition_hotkey_events_total" + hot_labels);
  double hot_share = 100.0 * hot_events / kEvents;
  EXPECT_GE(hot_share, 85.0);
  EXPECT_LE(hot_share, 95.0);
  double share_gauge =
      At(samples, "sase_partition_hotkey_share_percent" + hot_labels);
  EXPECT_GE(share_gauge, 85.0);
  EXPECT_LE(share_gauge, 95.0);
  // Shard attribution: a stable hash in [0, shards), with its pre-quiesce
  // queue-lag sample present.
  double hot_shard = At(samples, "sase_partition_hotkey_shard" + hot_labels);
  EXPECT_GE(hot_shard, 0.0);
  EXPECT_LT(hot_shard, 4.0);
  EXPECT_NE(samples.find("sase_partition_hotkey_queue_lag" + hot_labels),
            samples.end());

  // The human-readable fleet view carries the same accounting.
  ASSERT_NE(system.runtime(), nullptr);
  std::string report = system.runtime()->StatsReport();
  EXPECT_NE(report.find("hot keys:"), std::string::npos) << report;
  EXPECT_NE(report.find("HOT="), std::string::npos) << report;
}

TEST(ObsIntegrationTest, HotKeyTrackingReArmPreservesShareDenominator) {
  // Re-arming the sketch (capacity change) must clear slot contents but keep
  // the cumulative keyed-events denominator: zeroing it made the next
  // share_percent scrape divide fresh counts by a near-zero denominator and
  // report garbage shares (> 100%).
  Catalog catalog = Catalog::RetailDemo();
  Partitioner partitioner(&catalog, "TagId", 4);
  partitioner.EnableHotKeyTracking(16);
  testing::StreamBuilder stream(&catalog);
  for (int i = 0; i < 1000; ++i) {
    stream.Add("SHELF_READING", 1 + i, i % 2 == 0 ? "HOT" : "T" + std::to_string(i), 1);
  }
  for (const EventPtr& event : stream.events()) {
    partitioner.Route(kDefaultStream, *event);
  }
  ASSERT_EQ(partitioner.keyed_events(kDefaultStream), 1000u);
  ASSERT_FALSE(partitioner.HotKeys(kDefaultStream).empty());

  partitioner.EnableHotKeyTracking(32);  // re-arm with a new capacity
  EXPECT_EQ(partitioner.keyed_events(kDefaultStream), 1000u)
      << "re-arm must not reset the share denominator";
  EXPECT_TRUE(partitioner.HotKeys(kDefaultStream).empty())
      << "re-arm must clear slot contents";

  // Counts observed after the re-arm are measured against the cumulative
  // denominator, so a share can never exceed its true value.
  testing::StreamBuilder more(&catalog);
  for (int i = 0; i < 100; ++i) more.Add("SHELF_READING", 2000 + i, "HOT", 1);
  for (const EventPtr& event : more.events()) {
    partitioner.Route(kDefaultStream, *event);
  }
  EXPECT_EQ(partitioner.keyed_events(kDefaultStream), 1100u);
  auto stats = partitioner.HotKeys(kDefaultStream);
  ASSERT_FALSE(stats.empty());
  EXPECT_LE(100.0 * static_cast<double>(stats.front().count) /
                static_cast<double>(partitioner.keyed_events(kDefaultStream)),
            100.0);
}

TEST(ObsIntegrationTest, HotKeyMitigationSpreadsStatelessOnlyStream) {
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = 4;
  config.hotkey_mitigation = true;
  config.hotkey_min_events = 500;
  config.hotkey_split_threshold = 50;
  SaseSystem system(StoreLayout::RetailDemo(), config);
  // Stateless projection only: the stream has no sharded stateful query, so
  // a hot key is spread round-robin.
  auto id = system.RegisterMonitoringQuery("proj", kQueries[1], nullptr);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  Catalog catalog = Catalog::RetailDemo();
  testing::StreamBuilder stream(&catalog);
  for (int i = 0; i < 2000; ++i) {
    stream.Add("SHELF_READING", 1 + i / 100,
               i % 10 == 9 ? "cold-" + std::to_string(i) : "HOT", 2);
  }
  for (const EventPtr& event : stream.events()) {
    system.event_bus().OnEvent(event);
  }
  system.Flush();
  system.ScrapeMetrics();
  auto samples = ParseProm(system.metrics()->RenderPrometheus());
  EXPECT_EQ(At(samples, "sase_partition_hotkey_splits_total{mode=\"spread\"}"),
            1.0);
  EXPECT_EQ(At(samples,
               "sase_partition_hotkey_splits_total{mode=\"secondary\"}"),
            0.0);
  EXPECT_EQ(At(samples, "sase_partition_hotkey_split_refused_total"), 0.0);
  EXPECT_EQ(At(samples, "sase_partition_hotkey_split_active"), 1.0);

  ASSERT_NE(system.runtime(), nullptr);
  std::string report = system.runtime()->StatsReport();
  EXPECT_NE(report.find("hot-key splits:"), std::string::npos) << report;
  EXPECT_NE(report.find(" split)"), std::string::npos) << report;
}

TEST(ObsIntegrationTest, HotKeyMitigationRefusesWithoutCoveringAttribute) {
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = 4;
  config.hotkey_mitigation = true;
  config.hotkey_min_events = 500;
  config.hotkey_split_threshold = 50;
  SaseSystem system(StoreLayout::RetailDemo(), config);
  // Key-partitioned stateful pattern whose only equivalence class is the
  // TagId partition key: no second covering attribute, so splitting the hot
  // key would break value-partition locality — the runtime must refuse and
  // surface the refusal.
  auto id = system.RegisterMonitoringQuery("pairs", kQueries[0], nullptr);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  Catalog catalog = Catalog::RetailDemo();
  testing::StreamBuilder stream(&catalog);
  for (int i = 0; i < 2000; ++i) {
    stream.Add("SHELF_READING", 1 + i / 100,
               i % 10 == 9 ? "cold-" + std::to_string(i) : "HOT", 1);
  }
  for (const EventPtr& event : stream.events()) {
    system.event_bus().OnEvent(event);
  }
  system.Flush();
  system.ScrapeMetrics();
  auto samples = ParseProm(system.metrics()->RenderPrometheus());
  EXPECT_EQ(At(samples, "sase_partition_hotkey_splits_total{mode=\"spread\"}"),
            0.0);
  EXPECT_EQ(At(samples,
               "sase_partition_hotkey_splits_total{mode=\"secondary\"}"),
            0.0);
  EXPECT_GE(At(samples, "sase_partition_hotkey_split_refused_total"), 1.0);
  EXPECT_EQ(At(samples, "sase_partition_hotkey_split_active"), 0.0);

  ASSERT_NE(system.runtime(), nullptr);
  std::string report = system.runtime()->StatsReport();
  EXPECT_NE(report.find("hot-key splits:"), std::string::npos) << report;
  EXPECT_NE(report.find("split-refused"), std::string::npos) << report;
}

TEST(ObsIntegrationTest, MetricsSurviveCheckpointKillRecover) {
  std::string dir = ::testing::TempDir() + "/sase_obs_recovery";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Catalog catalog = Catalog::RetailDemo();
  std::vector<EventPtr> trace = Trace(catalog, 500);
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = 2;
  config.runtime_merge_interval = 64;
  config.checkpoint.dir = dir;

  size_t delivered = 0;
  auto collector = [&delivered](const OutputRecord&) { ++delivered; };

  {
    // The "crashed" process: register, checkpoint mid-stream, die unflushed.
    SaseSystem system(StoreLayout::RetailDemo(), config);
    auto id = system.RegisterMonitoringQuery("q0", kQueries[0], collector);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    for (size_t i = 0; i < 250; ++i) {
      if (i == 100) {
        Status taken = system.Checkpoint();
        ASSERT_TRUE(taken.ok()) << taken.ToString();
      }
      system.event_bus().OnEvent(trace[i]);
    }
    // Journal instrumentation recorded one append-latency sample per record.
    system.ScrapeMetrics();
    auto samples = ParseProm(system.metrics()->RenderPrometheus());
    EXPECT_GT(At(samples, "sase_journal_records_total"), 0.0);
    EXPECT_GE(At(samples, "sase_journal_append_latency_ns_count"),
              At(samples, "sase_journal_records_total"));
    EXPECT_EQ(At(samples, "sase_checkpoints_total"), 1.0);
    EXPECT_GT(At(samples, "sase_checkpoint_snapshot_bytes"), 0.0);
    EXPECT_EQ(At(samples, "sase_checkpoint_snapshot_duration_ns_count"), 1.0);
  }

  auto recovered = SaseSystem::Recover(
      dir, StoreLayout::RetailDemo(), config,
      [&collector](const std::string&) -> OutputCallback { return collector; });
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  SaseSystem& system = *recovered.value();
  for (size_t i = 250; i < trace.size(); ++i) {
    system.event_bus().OnEvent(trace[i]);
  }
  system.Flush();

  ASSERT_NE(system.metrics(), nullptr);
  system.ScrapeMetrics();
  auto samples = ParseProm(system.metrics()->RenderPrometheus());

  // Mirrors equal the recovered process's own truth counters.
  EXPECT_EQ(At(samples, "sase_recovery_replayed_records_total"),
            static_cast<double>(system.recovered_journal_records()));
  EXPECT_GT(system.recovered_journal_records(), 0u);
  EXPECT_EQ(At(samples, "sase_recovery_duration_ns_count"), 1.0);
  EXPECT_EQ(At(samples, "sase_delivered_records_total{host=\"runtime\"}") +
                At(samples, "sase_delivered_records_total{host=\"serial\"}"),
            static_cast<double>(system.records_delivered()));
  EXPECT_EQ(At(samples, "sase_engine_events_total{host=\"serial\"}"),
            static_cast<double>(system.engine().Stats().events_processed));
  EXPECT_EQ(At(samples, "sase_checkpoints_total"),
            static_cast<double>(system.checkpoints_taken()));
  EXPECT_GT(At(samples, "sase_journal_records_total"), 0.0);
  EXPECT_EQ(At(samples, "sase_runtime_events_dispatched_total"),
            SumFamily(samples, "sase_stream_events_total"));

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sase
