#include "db/ons.h"

#include <gtest/gtest.h>

namespace sase {
namespace db {
namespace {

TEST(OnsTest, RegisterAndLookup) {
  Database database;
  Ons ons(&database);
  ASSERT_TRUE(ons.RegisterProduct("TAG1", {"Razor", "2026-12-01", true}).ok());
  auto info = ons.Lookup("TAG1");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->product_name, "Razor");
  EXPECT_EQ(info->expiration_date, "2026-12-01");
  EXPECT_TRUE(info->saleable);
  EXPECT_EQ(ons.product_count(), 1u);
}

TEST(OnsTest, UnknownTagIsNullopt) {
  Database database;
  Ons ons(&database);
  EXPECT_FALSE(ons.Lookup("NOPE").has_value());
}

TEST(OnsTest, ReRegistrationReplaces) {
  Database database;
  Ons ons(&database);
  ASSERT_TRUE(ons.RegisterProduct("TAG1", {"Razor", "", true}).ok());
  ASSERT_TRUE(ons.RegisterProduct("TAG1", {"Blade", "", false}).ok());
  auto info = ons.Lookup("TAG1");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->product_name, "Blade");
  EXPECT_FALSE(info->saleable);
  EXPECT_EQ(ons.product_count(), 1u);
}

TEST(OnsTest, BackedByProductsTable) {
  // "we simulate an ONS with a local database storing product metadata" —
  // the data must be visible to ad-hoc SQL like any other table.
  Database database;
  Ons ons(&database);
  ASSERT_TRUE(ons.RegisterProduct("TAG1", {"Razor", "", true}).ok());
  Table* table = database.GetTable("products");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->row_count(), 1u);
}

TEST(OnsTest, ResolverAdapterWorks) {
  Database database;
  Ons ons(&database);
  ASSERT_TRUE(ons.RegisterProduct("TAG1", {"Razor", "", true}).ok());
  OnsResolver resolver = ons.Resolver();
  auto info = resolver("TAG1");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->product_name, "Razor");
  EXPECT_FALSE(resolver("TAG2").has_value());
}

TEST(OnsTest, TwoOnsInstancesShareTable) {
  Database database;
  Ons first(&database);
  ASSERT_TRUE(first.RegisterProduct("TAG1", {"Razor", "", true}).ok());
  Ons second(&database);  // reuses the existing products table
  EXPECT_TRUE(second.Lookup("TAG1").has_value());
}

}  // namespace
}  // namespace db
}  // namespace sase
