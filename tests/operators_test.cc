#include <gtest/gtest.h>

#include <limits>

#include "engine/selection.h"
#include "engine/transformation.h"
#include "engine/window_filter.h"
#include "query/parser.h"
#include "test_util.h"
#include "util/logging.h"

namespace sase {
namespace {

using testing::StreamBuilder;

/// Terminal operator collecting matches for assertions.
class CollectorOp : public Operator {
 public:
  const char* name() const override { return "Collector"; }
  void OnMatch(const Match& match) override {
    CountIn();
    matches.push_back(match);
  }
  std::vector<Match> matches;
};

class OperatorsTest : public ::testing::Test {
 protected:
  Match MakeMatch(const std::vector<EventPtr>& bindings) {
    Match match;
    match.bindings = bindings;
    Timestamp lo = std::numeric_limits<Timestamp>::max(), hi = 0;
    for (const auto& event : bindings) {
      if (event == nullptr) continue;
      lo = std::min(lo, event->timestamp());
      hi = std::max(hi, event->timestamp());
    }
    match.first_ts = lo;
    match.last_ts = hi;
    return match;
  }

  Catalog catalog_ = Catalog::RetailDemo();
  FunctionRegistry functions_;
};

TEST_F(OperatorsTest, SelectionFiltersOnResidualPredicate) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A", 1).Add("EXIT_READING", 2, "A", 2);
  auto pred = Parser::ParseExpression("x.AreaId < z.AreaId").value();
  // Resolve manually against a two-slot layout.
  auto parsed = Parser::Parse(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.AreaId < z.AreaId");
  Analyzer analyzer(&catalog_, TimeConfig{});
  AnalyzedQuery query = analyzer.Analyze(std::move(parsed).value()).value();
  ASSERT_EQ(query.residual_predicates.size(), 1u);

  Selection selection(query.residual_predicates, &functions_);
  CollectorOp collector;
  selection.set_downstream(&collector);

  selection.OnMatch(MakeMatch({stream.events()[0], stream.events()[1]}));
  EXPECT_EQ(collector.matches.size(), 1u);

  // Reversed areas fail the predicate.
  StreamBuilder reversed(&catalog_);
  reversed.Add("SHELF_READING", 1, "A", 5).Add("EXIT_READING", 2, "A", 2);
  selection.OnMatch(MakeMatch({reversed.events()[0], reversed.events()[1]}));
  EXPECT_EQ(collector.matches.size(), 1u);
  EXPECT_EQ(selection.matches_in(), 2u);
  EXPECT_EQ(selection.matches_out(), 1u);
  (void)pred;
}

TEST_F(OperatorsTest, WindowFilterEnforcesSpan) {
  WindowFilter window(10);
  CollectorOp collector;
  window.set_downstream(&collector);
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A").Add("EXIT_READING", 11, "A")
        .Add("EXIT_READING", 12, "A");
  window.OnMatch(MakeMatch({stream.events()[0], stream.events()[1]}));  // span 10
  window.OnMatch(MakeMatch({stream.events()[0], stream.events()[2]}));  // span 11
  EXPECT_EQ(collector.matches.size(), 1u);
}

TEST_F(OperatorsTest, WindowFilterUnboundedPassesEverything) {
  WindowFilter window(-1);
  CollectorOp collector;
  window.set_downstream(&collector);
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A").Add("EXIT_READING", 1000000, "A");
  window.OnMatch(MakeMatch({stream.events()[0], stream.events()[1]}));
  EXPECT_EQ(collector.matches.size(), 1u);
}

TEST_F(OperatorsTest, TransformationProjection) {
  auto parsed = Parser::Parse(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "RETURN x.TagId AS Tag, z.AreaId AS ExitArea, x.TagId + '!' AS Bang "
      "INTO alerts");
  Analyzer analyzer(&catalog_, TimeConfig{});
  AnalyzedQuery query = analyzer.Analyze(std::move(parsed).value()).value();

  std::vector<OutputRecord> records;
  Transformation transformation(
      &query, &catalog_, &functions_,
      [&records](const OutputRecord& r) { records.push_back(r); });

  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "T1", 1).Add("EXIT_READING", 9, "T1", 4);
  Match match = MakeMatch({stream.events()[0], stream.events()[1]});
  transformation.OnMatch(match);

  ASSERT_EQ(records.size(), 1u);
  const OutputRecord& record = records[0];
  EXPECT_EQ(record.stream, "alerts");
  EXPECT_EQ(record.timestamp, 9);
  EXPECT_EQ(record.Get("Tag").AsString(), "T1");
  EXPECT_EQ(record.Get("ExitArea").AsInt(), 4);
  EXPECT_EQ(record.Get("Bang").AsString(), "T1!");
  EXPECT_TRUE(record.Get("nosuch").is_null());
}

TEST_F(OperatorsTest, TransformationDefaultProjection) {
  auto parsed = Parser::Parse("EVENT SEQ(SHELF_READING x, EXIT_READING z)");
  Analyzer analyzer(&catalog_, TimeConfig{});
  AnalyzedQuery query = analyzer.Analyze(std::move(parsed).value()).value();
  std::vector<OutputRecord> records;
  Transformation transformation(
      &query, &catalog_, &functions_,
      [&records](const OutputRecord& r) { records.push_back(r); });
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "T1", 1, "Soap")
        .Add("EXIT_READING", 2, "T1", 4, "Soap");
  transformation.OnMatch(MakeMatch({stream.events()[0], stream.events()[1]}));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].Get("x_TagId").AsString(), "T1");
  EXPECT_EQ(records[0].Get("z_AreaId").AsInt(), 4);
  EXPECT_EQ(records[0].Get("x_Timestamp").AsInt(), 1);
  EXPECT_EQ(records[0].Get("z_Timestamp").AsInt(), 2);
}

TEST_F(OperatorsTest, TransformationInvokesFunctions) {
  functions_.RegisterCommon();
  auto parsed = Parser::Parse(
      "EVENT SHELF_READING x RETURN _upper(x.TagId) AS U");
  Analyzer analyzer(&catalog_, TimeConfig{});
  AnalyzedQuery query = analyzer.Analyze(std::move(parsed).value()).value();
  std::vector<OutputRecord> records;
  Transformation transformation(
      &query, &catalog_, &functions_,
      [&records](const OutputRecord& r) { records.push_back(r); });
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "abc");
  transformation.OnMatch(MakeMatch({stream.events()[0]}));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].Get("U").AsString(), "ABC");
}

TEST_F(OperatorsTest, TransformationEvalErrorYieldsNullColumn) {
  // _nosuch is not registered: the record is still produced, the column is
  // NULL, and the error is counted.
  auto parsed = Parser::Parse(
      "EVENT SHELF_READING x RETURN _nosuch(x.TagId) AS Broken, x.TagId AS T");
  Analyzer analyzer(&catalog_, TimeConfig{});
  AnalyzedQuery query = analyzer.Analyze(std::move(parsed).value()).value();
  std::vector<OutputRecord> records;
  Logger::Get().set_min_level(LogLevel::kError);
  Transformation transformation(
      &query, &catalog_, &functions_,
      [&records](const OutputRecord& r) { records.push_back(r); });
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "abc");
  transformation.OnMatch(MakeMatch({stream.events()[0]}));
  Logger::Get().set_min_level(LogLevel::kInfo);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].Get("Broken").is_null());
  EXPECT_EQ(records[0].Get("T").AsString(), "abc");
  EXPECT_EQ(transformation.stats().eval_errors, 1u);
}

TEST_F(OperatorsTest, OperatorCountersFlowThroughPipeline) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A").Add("EXIT_READING", 2, "A");
  QueryEngine engine(&catalog_);
  int outputs = 0;
  auto id = engine.Register("EVENT SEQ(SHELF_READING x, EXIT_READING z)",
                            [&outputs](const OutputRecord&) { ++outputs; });
  ASSERT_TRUE(id.ok());
  for (const auto& event : stream.events()) engine.OnEvent(event);
  engine.OnFlush();
  const QueryPlan* plan = engine.plan(id.value());
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->sequence_scan().matches_out(), 1u);
  EXPECT_EQ(plan->selection().matches_in(), 1u);
  EXPECT_EQ(plan->window_filter().matches_in(), 1u);
  EXPECT_EQ(plan->negation().matches_in(), 1u);
  EXPECT_EQ(plan->transformation().matches_in(), 1u);
  EXPECT_EQ(plan->output_count(), 1u);
  EXPECT_EQ(outputs, 1);
  EXPECT_EQ(plan->eval_error_count(), 0u);
  // Explain covers all operators.
  std::string explain = plan->Explain(catalog_);
  EXPECT_NE(explain.find("SequenceScan"), std::string::npos);
  EXPECT_NE(explain.find("Negation"), std::string::npos);
}

}  // namespace
}  // namespace sase
