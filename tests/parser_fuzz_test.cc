// Robustness property: the parser and analyzer must never crash — every
// input, however mangled, yields either a valid AST or a clean error
// Status. Inputs are random token soups and mutations of valid queries.

#include <gtest/gtest.h>

#include "query/analyzer.h"
#include "query/ddl.h"
#include "query/parser.h"
#include "util/random.h"

namespace sase {
namespace {

const char* kFragments[] = {
    "EVENT", "SEQ", "WHERE", "WITHIN", "RETURN", "FROM", "AND", "OR", "NOT",
    "AS", "INTO", "TRUE", "FALSE", "NULL", "(", ")", ",", ".", "!", "=",
    "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "x", "y", "z",
    "SHELF_READING", "COUNTER_READING", "EXIT_READING", "TagId", "AreaId",
    "12", "3.5", "'str'", "hours", "COUNT", "SUM", "_f", "\xE2\x88\xA7",
};

std::string RandomSoup(Random* rng, int length) {
  std::string out;
  for (int i = 0; i < length; ++i) {
    out += kFragments[rng->Uniform(0, std::size(kFragments) - 1)];
    out += " ";
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, TokenSoupNeverCrashes) {
  Random rng(GetParam());
  Catalog catalog = Catalog::RetailDemo();
  Analyzer analyzer(&catalog, TimeConfig{});
  int parsed_ok = 0;
  for (int i = 0; i < 500; ++i) {
    std::string input = RandomSoup(&rng, static_cast<int>(rng.Uniform(1, 30)));
    auto result = Parser::Parse(input);
    if (result.ok()) {
      ++parsed_ok;
      // Whatever parses must survive analysis (ok or clean error).
      auto analyzed = analyzer.Analyze(std::move(result).value());
      if (analyzed.ok()) {
        EXPECT_GE(analyzed.value().positive_slots.size(), 1u);
      }
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  // The soup occasionally forms valid queries; no strict bound, just
  // confirm the loop isn't vacuous for some seed by not asserting zero.
  SUCCEED() << parsed_ok << " soups parsed";
}

TEST_P(ParserFuzzTest, MutatedValidQueryNeverCrashes) {
  Random rng(GetParam() * 7919);
  const std::string base =
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 12 hours "
      "RETURN x.TagId, COUNT(*) INTO alerts";
  Catalog catalog = Catalog::RetailDemo();
  Analyzer analyzer(&catalog, TimeConfig{});
  for (int i = 0; i < 500; ++i) {
    std::string mutated = base;
    int mutations = static_cast<int>(rng.Uniform(1, 5));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
      switch (rng.Uniform(0, 2)) {
        case 0: mutated.erase(pos, 1); break;
        case 1: mutated.insert(pos, 1, static_cast<char>(rng.Uniform(32, 126))); break;
        default: mutated[pos] = static_cast<char>(rng.Uniform(32, 126)); break;
      }
    }
    auto result = Parser::Parse(mutated);
    if (result.ok()) {
      (void)analyzer.Analyze(std::move(result).value());  // must not crash
    }
  }
}

TEST_P(ParserFuzzTest, DdlSoupNeverCrashes) {
  Random rng(GetParam() * 104729);
  for (int i = 0; i < 300; ++i) {
    Catalog catalog;
    std::string input = RandomSoup(&rng, static_cast<int>(rng.Uniform(1, 15)));
    auto result = DeclareEventTypes(&catalog, input);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace sase
