#include "query/parser.h"

#include <gtest/gtest.h>

namespace sase {
namespace {

ParsedQuery MustParse(const std::string& text) {
  auto query = Parser::Parse(text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  return std::move(query).value();
}

// The paper's Q1 (shoplifting), verbatim modulo ASCII AND.
constexpr const char* kQ1 = R"(
  EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z)
  WHERE x.TagId = y.TagId AND x.TagId = z.TagId
  WITHIN 12 hours
  RETURN x.TagId, x.ProductName, z.AreaId, _retrieveLocation(z.AreaId)
)";

// The paper's Q2 (location-change archiving rule).
constexpr const char* kQ2 = R"(
  EVENT SEQ(SHELF_READING x, SHELF_READING y)
  WHERE x.TagId = y.TagId AND x.AreaId != y.AreaId
  WITHIN 1 hour
  RETURN _updateLocation(y.TagId, y.AreaId, y.Timestamp)
)";

TEST(ParserTest, ParsesQ1Structure) {
  ParsedQuery q = MustParse(kQ1);
  ASSERT_EQ(q.pattern.size(), 3u);
  EXPECT_EQ(q.pattern[0].type_name, "SHELF_READING");
  EXPECT_EQ(q.pattern[0].variable, "x");
  EXPECT_FALSE(q.pattern[0].negated);
  EXPECT_EQ(q.pattern[1].type_name, "COUNTER_READING");
  EXPECT_TRUE(q.pattern[1].negated);
  EXPECT_EQ(q.pattern[2].variable, "z");
  EXPECT_TRUE(q.window.present);
  EXPECT_EQ(q.window.count, 12);
  EXPECT_EQ(q.window.unit, "hours");
  ASSERT_EQ(q.return_items.size(), 4u);
  EXPECT_EQ(q.return_items[3].expr->kind(), ExprKind::kCall);
  EXPECT_EQ(q.positive_count(), 2u);
}

TEST(ParserTest, ParsesQ1WithUnicodeAnd) {
  std::string text =
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId \xE2\x88\xA7 x.TagId = z.TagId WITHIN 12 hours";
  ParsedQuery q = MustParse(text);
  ASSERT_NE(q.where, nullptr);
  // Top node must be the conjunction.
  auto* top = static_cast<BinaryExpr*>(q.where.get());
  EXPECT_EQ(top->op(), BinaryOp::kAnd);
}

TEST(ParserTest, ParsesQ2RepeatedTypes) {
  ParsedQuery q = MustParse(kQ2);
  ASSERT_EQ(q.pattern.size(), 2u);
  EXPECT_EQ(q.pattern[0].type_name, "SHELF_READING");
  EXPECT_EQ(q.pattern[1].type_name, "SHELF_READING");
  EXPECT_EQ(q.window.count, 1);
  EXPECT_EQ(q.window.unit, "hour");
  ASSERT_EQ(q.return_items.size(), 1u);
  EXPECT_EQ(q.return_items[0].expr->kind(), ExprKind::kCall);
}

TEST(ParserTest, FromClause) {
  ParsedQuery q = MustParse("FROM retail EVENT SHELF_READING x");
  EXPECT_EQ(q.from_stream, "retail");
  ASSERT_EQ(q.pattern.size(), 1u);
}

TEST(ParserTest, SingleEventPattern) {
  ParsedQuery q = MustParse("EVENT EXIT_READING e WHERE e.AreaId = 3");
  ASSERT_EQ(q.pattern.size(), 1u);
  EXPECT_EQ(q.pattern[0].type_name, "EXIT_READING");
  EXPECT_FALSE(q.window.present);
}

TEST(ParserTest, AnyPatternSynonym) {
  ParsedQuery q = MustParse("EVENT ANY(SHELF_READING s)");
  ASSERT_EQ(q.pattern.size(), 1u);
  EXPECT_EQ(q.pattern[0].variable, "s");
}

TEST(ParserTest, WindowInBareTicks) {
  ParsedQuery q = MustParse("EVENT SHELF_READING x WITHIN 500");
  EXPECT_TRUE(q.window.present);
  EXPECT_EQ(q.window.count, 500);
  EXPECT_TRUE(q.window.unit.empty());
}

TEST(ParserTest, ReturnAliasesAndInto) {
  ParsedQuery q = MustParse(
      "EVENT SHELF_READING x RETURN x.TagId AS Tag, x.AreaId INTO shelf_feed");
  ASSERT_EQ(q.return_items.size(), 2u);
  EXPECT_EQ(q.return_items[0].alias, "Tag");
  EXPECT_TRUE(q.return_items[1].alias.empty());
  EXPECT_EQ(q.output_name, "shelf_feed");
}

TEST(ParserTest, AggregatesInReturn) {
  ParsedQuery q = MustParse(
      "EVENT SHELF_READING x RETURN COUNT(*), SUM(x.AreaId), AVG(x.AreaId), "
      "MIN(x.AreaId), MAX(x.AreaId)");
  ASSERT_EQ(q.return_items.size(), 5u);
  for (const auto& item : q.return_items) {
    EXPECT_EQ(item.expr->kind(), ExprKind::kAggregate) << item.expr->ToString();
  }
  auto* count = static_cast<AggregateExpr*>(q.return_items[0].expr.get());
  EXPECT_EQ(count->agg(), AggregateKind::kCount);
  EXPECT_EQ(count->arg(), nullptr);  // COUNT(*)
}

TEST(ParserTest, OperatorPrecedence) {
  ParsedQuery q = MustParse(
      "EVENT SHELF_READING x WHERE x.AreaId + 1 * 2 = 3 AND x.AreaId < 4 OR "
      "x.AreaId > 5");
  // ((((x.AreaId + (1 * 2)) = 3) AND (x.AreaId < 4)) OR (x.AreaId > 5))
  EXPECT_EQ(q.where->ToString(),
            "((((x.AreaId + (1 * 2)) = 3) AND (x.AreaId < 4)) OR (x.AreaId > 5))");
}

TEST(ParserTest, UnaryMinusAndNot) {
  ParsedQuery q =
      MustParse("EVENT SHELF_READING x WHERE NOT x.AreaId = -1");
  EXPECT_EQ(q.where->ToString(), "NOT (x.AreaId = -1)");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  ParsedQuery q = MustParse(
      "EVENT SHELF_READING x WHERE (x.AreaId = 1 OR x.AreaId = 2) AND "
      "x.TagId = 'T'");
  auto* top = static_cast<BinaryExpr*>(q.where.get());
  EXPECT_EQ(top->op(), BinaryOp::kAnd);
}

TEST(ParserTest, ToStringRoundTrips) {
  ParsedQuery q1 = MustParse(kQ1);
  ParsedQuery q2 = MustParse(q1.ToString());
  EXPECT_EQ(q1.ToString(), q2.ToString());
}

TEST(ParserTest, ErrorMissingEvent) {
  auto result = Parser::Parse("WHERE x.a = 1");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("EVENT"), std::string::npos);
}

TEST(ParserTest, ErrorDuplicateVariable) {
  auto result = Parser::Parse("EVENT SEQ(SHELF_READING x, EXIT_READING x)");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate"), std::string::npos);
}

TEST(ParserTest, ErrorAllNegated) {
  auto result = Parser::Parse("EVENT SEQ(!(SHELF_READING x))");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("non-negated"), std::string::npos);
}

TEST(ParserTest, ErrorUnclosedSeq) {
  EXPECT_FALSE(Parser::Parse("EVENT SEQ(SHELF_READING x").ok());
}

TEST(ParserTest, ErrorTrailingGarbage) {
  EXPECT_FALSE(Parser::Parse("EVENT SHELF_READING x bogus trailing").ok());
}

TEST(ParserTest, ErrorBareIdentifierInExpression) {
  EXPECT_FALSE(Parser::Parse("EVENT SHELF_READING x WHERE x = 1").ok());
}

TEST(ParserTest, ErrorAggregateArity) {
  EXPECT_FALSE(
      Parser::Parse("EVENT SHELF_READING x RETURN SUM(x.AreaId, x.AreaId)").ok());
}

TEST(ParserTest, StandaloneExpressionParsing) {
  auto expr = Parser::ParseExpression("x.TagId = 'T1' AND x.AreaId < 5");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  EXPECT_EQ(expr.value()->ToString(), "((x.TagId = 'T1') AND (x.AreaId < 5))");
  EXPECT_FALSE(Parser::ParseExpression("x.TagId = ").ok());
  EXPECT_FALSE(Parser::ParseExpression("1 = 1 extra").ok());
}

TEST(ParserTest, NegationRequiresParens) {
  EXPECT_FALSE(
      Parser::Parse("EVENT SEQ(SHELF_READING x, !COUNTER_READING y)").ok());
}

}  // namespace
}  // namespace sase
