// Plan-construction tests: the Planner must rehome predicates when an
// optimization is disabled so that every configuration computes identical
// results (the property tests verify the *results*; these verify the
// *mechanism*).

#include "engine/planner.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sase {
namespace {

using testing::MustAnalyze;

class PlannerTest : public ::testing::Test {
 protected:
  std::unique_ptr<QueryPlan> Build(const std::string& text, PlanOptions options) {
    return Planner::Build(MustAnalyze(catalog_, text), options, &catalog_,
                          &functions_, nullptr);
  }

  Catalog catalog_ = Catalog::RetailDemo();
  FunctionRegistry functions_;
};

constexpr const char* kQ1 =
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId AND x.AreaId = 1 "
    "WITHIN 100";

TEST_F(PlannerTest, DefaultPlanPushesEverything) {
  auto plan = Build(kQ1, PlanOptions{});
  // Edge filter on x pushed to the NFA; equality subsumed by partitioning.
  EXPECT_EQ(plan->nfa().edge(0).filters.size(), 1u);
  EXPECT_TRUE(plan->nfa().partitioned());
  EXPECT_EQ(plan->selection().predicate_count(), 0u);
  EXPECT_EQ(plan->window_filter().window(), 100);
}

TEST_F(PlannerTest, DisablingPredicatePushdownMovesFiltersToSelection) {
  PlanOptions options;
  options.push_predicates = false;
  auto plan = Build(kQ1, options);
  EXPECT_TRUE(plan->nfa().edge(0).filters.empty());
  EXPECT_EQ(plan->selection().predicate_count(), 1u);  // x.AreaId = 1
}

TEST_F(PlannerTest, DisablingPartitioningRestoresEqualityPredicates) {
  PlanOptions options;
  options.use_partitioning = false;
  auto plan = Build(kQ1, options);
  EXPECT_FALSE(plan->nfa().partitioned());
  // x.TagId = z.TagId returns to Selection; x.TagId = y.TagId (negated var)
  // returns to the negation's cross predicates.
  EXPECT_EQ(plan->selection().predicate_count(), 1u);
  EXPECT_EQ(plan->query().negations.size(), 1u);
}

TEST_F(PlannerTest, DisablingWindowPushdownKeepsWindowFilterAuthoritative) {
  PlanOptions options;
  options.push_window = false;
  auto plan = Build(kQ1, options);
  EXPECT_EQ(plan->window_filter().window(), 100);  // still enforced above
}

TEST_F(PlannerTest, ExplainDescribesOptionsAndOperators) {
  PlanOptions options;
  options.use_partitioning = false;
  auto plan = Build(kQ1, options);
  std::string explain = plan->Explain(catalog_);
  EXPECT_NE(explain.find("partitioning=off"), std::string::npos);
  EXPECT_NE(explain.find("SequenceScan"), std::string::npos);
  EXPECT_NE(explain.find("WindowFilter"), std::string::npos);
  EXPECT_NE(explain.find("Transformation"), std::string::npos);
}

TEST_F(PlannerTest, EngineStatsReportCoversPlans) {
  QueryEngine engine(&catalog_);
  ASSERT_TRUE(engine.Register(kQ1, nullptr).ok());
  ASSERT_TRUE(engine.Register("FROM side EVENT SHELF_READING s", nullptr).ok());
  EventBuilder builder(catalog_, "SHELF_READING");
  engine.OnEvent(builder.Set("TagId", "T").Set("AreaId", 1).Build(1, 0).value());
  std::string report = engine.StatsReport();
  EXPECT_NE(report.find("queries=2"), std::string::npos);
  EXPECT_NE(report.find("[default]"), std::string::npos);
  EXPECT_NE(report.find("[side]"), std::string::npos);
  EXPECT_NE(report.find("errors=0"), std::string::npos);
}

}  // namespace
}  // namespace sase
