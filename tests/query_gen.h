#ifndef SASE_TESTS_QUERY_GEN_H_
#define SASE_TESTS_QUERY_GEN_H_

// Seeded generator of valid SASE queries and event streams for the
// randomized differential harness (tests/differential_test.cc).
//
// The query space covers the language surface the engine executes:
// single-event and SEQ patterns (2-4 components over the retail types),
// optional negated components at the head, middle or tail, TagId/AreaId
// equivalence classes (both shardable and broadcast-only shapes),
// single-variable predicates, WITHIN windows (including the WITHIN-less
// stateful shape that only snapshot v2 can checkpoint), and RETURN clauses
// from default projection through running aggregates (COUNT/SUM/AVG/
// MIN/MAX, plain and nested in arithmetic).
//
// Every candidate is validated through the real Parser + Analyzer before it
// is handed out, so the harness only ever measures execution divergence,
// never generator sloppiness. Generation is a pure function of the seed:
// a failing case reproduces from the seed printed in the test failure.

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "rfid/workload.h"

namespace sase {
namespace testgen {

/// Seeded consumer-acknowledgement plan for the exactly-once crash-window
/// mode: how the simulated consumer acks delivered records, how the journal
/// group-commits those acks, and how wide the two crash windows are when
/// the kill lands.
///
///   - emit-to-ack window: `ack_stride > 1` leaves a tail of delivered but
///     never-acked stamps, and `stall_after_percent < 100` stops the
///     consumer acking entirely partway to the crash;
///   - ack-to-fsync window: `ack_commit_interval > 1` means up to
///     interval-1 acks sit in the journal's pending batch, which dies with
///     the process (EventJournal's destructor deliberately does not
///     commit).
struct AckPlan {
  uint64_t ack_commit_interval = 1;  // group-commit batch size
  uint64_t ack_stride = 1;  // ack stamps whose position % stride == 0
  int stall_after_percent = 100;  // consumer stops acking past this point

  std::string Describe() const {
    std::ostringstream out;
    out << "ack{interval=" << ack_commit_interval << " stride=" << ack_stride
        << " stall@" << stall_after_percent << "%}";
    return out.str();
  }
};

/// One differential test case: queries registered up front, the event
/// stream they execute over, and the consumer-ack plan for the
/// exactly-once crash-window mode.
struct GeneratedCase {
  uint64_t seed = 0;
  std::vector<std::string> queries;
  std::vector<EventPtr> events;
  AckPlan ack_plan;

  /// Reproduction banner for failure messages.
  std::string Describe() const {
    std::ostringstream out;
    out << "seed=" << seed << " events=" << events.size() << " "
        << ack_plan.Describe();
    for (size_t i = 0; i < queries.size(); ++i) {
      out << "\n  q" << i << ": " << queries[i];
    }
    return out.str();
  }
};

class QueryGenerator {
 public:
  QueryGenerator(const Catalog* catalog, uint64_t seed)
      : catalog_(catalog), rng_(seed) {}

  /// Generates one analyzable query (validated; retries internally).
  std::string NextQuery() {
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::string text = Candidate();
      if (Valid(text)) return text;
    }
    // The grammar below always produces at least the trivial shape; if we
    // get here the generator itself regressed.
    return "EVENT SHELF_READING s";
  }

  /// Generates `count` structurally identical queries: same component
  /// skeleton (types, negation placement), same equivalence class and same
  /// window boundedness — different predicate constants, comparison ops and
  /// WITHIN spans. With scan sharing enabled they all land in one shared
  /// group (engine/shared_scan.h GroupKey ignores exactly the parts that
  /// vary), so a family is the unit the sharing differential mode stresses.
  std::vector<std::string> NextFamily(int count) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::vector<std::string> family = FamilyCandidate(count);
      bool ok = true;
      for (const std::string& text : family) {
        if (!Valid(text)) {
          ok = false;
          break;
        }
      }
      if (ok) return family;
    }
    return std::vector<std::string>(static_cast<size_t>(count),
                                    "EVENT SHELF_READING s");
  }

 private:
  int Roll(int bound) {
    return static_cast<int>(rng_() % static_cast<uint64_t>(bound));
  }
  bool Chance(int percent) { return Roll(100) < percent; }

  bool Valid(const std::string& text) {
    auto parsed = Parser::Parse(text);
    if (!parsed.ok()) return false;
    Analyzer analyzer(catalog_, TimeConfig{});
    return analyzer.Analyze(std::move(parsed).value()).ok();
  }

  const char* RandomType() {
    static const char* kTypes[] = {"SHELF_READING", "COUNTER_READING",
                                   "EXIT_READING"};
    return kTypes[Roll(3)];
  }

  std::string Candidate() {
    // Variable names by component position (4 positives + 1 negation max).
    static const char* kVars[] = {"a", "b", "c", "d", "e"};

    bool single = Chance(20);
    int positives = single ? 1 : 2 + Roll(3);
    int negated_slot = -1;  // slot index within the component list
    int components = positives;
    if (!single && Chance(35)) {
      components = positives + 1;
      negated_slot = Roll(components);
    }

    bool head_or_tail_negation =
        negated_slot == 0 || negated_slot == components - 1;
    // Head/tail negation requires WITHIN (analyzer rule); otherwise the
    // WITHIN-less stateful shape is itself a target state class.
    bool with_window = head_or_tail_negation || Chance(70);
    int window = 20 + Roll(4) * 35;  // 20..125 ticks

    std::ostringstream out;
    out << "EVENT ";
    std::vector<std::string> var_names;
    if (single) {
      out << RandomType() << " " << kVars[0];
      var_names.push_back(kVars[0]);
    } else {
      out << "SEQ(";
      for (int i = 0; i < components; ++i) {
        if (i > 0) out << ", ";
        bool negate = i == negated_slot;
        if (negate) out << "!(";
        out << RandomType() << " " << kVars[i];
        if (negate) out << ")";
        var_names.push_back(kVars[i]);
      }
      out << ")";
    }

    // WHERE: an equivalence class across every variable (70% TagId — the
    // shardable shape — else AreaId), plus scattered single-variable
    // predicates on AreaId.
    std::vector<std::string> conjuncts;
    if (!single && Chance(80)) {
      const char* attr = Chance(70) ? "TagId" : "AreaId";
      for (size_t i = 1; i < var_names.size(); ++i) {
        conjuncts.push_back(var_names[0] + "." + attr + " = " + var_names[i] +
                            "." + attr);
      }
    }
    for (const std::string& var : var_names) {
      if (!Chance(25)) continue;
      static const char* kOps[] = {"=", "!=", "<", ">"};
      conjuncts.push_back(var + ".AreaId " + kOps[Roll(4)] + " " +
                          std::to_string(Roll(4)));
    }
    if (!conjuncts.empty()) {
      out << " WHERE ";
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        if (i > 0) out << " AND ";
        out << conjuncts[i];
      }
    }

    if (with_window) out << " WITHIN " << window;

    // RETURN: default projection (omitted), a plain projection, or running
    // aggregates (possibly nested in arithmetic). Aggregate references must
    // use a positive variable.
    std::string agg_var;
    for (int i = 0; i < components; ++i) {
      if (i != negated_slot) {
        agg_var = var_names[static_cast<size_t>(i)];
        break;
      }
    }
    int ret = Roll(100);
    if (ret < 30) {
      // default projection
    } else if (ret < 65) {
      out << " RETURN " << agg_var << ".TagId, " << agg_var << ".AreaId";
      if (Chance(50)) out << ", " << agg_var << ".Timestamp AS ts";
    } else {
      static const char* kAggs[] = {"COUNT(*)", "SUM({v}.AreaId)",
                                    "AVG({v}.AreaId)", "MIN({v}.AreaId)",
                                    "MAX({v}.AreaId)"};
      std::string agg = kAggs[Roll(5)];
      size_t pos;
      while ((pos = agg.find("{v}")) != std::string::npos) {
        agg.replace(pos, 3, agg_var);
      }
      out << " RETURN " << agg << " AS agg0";
      if (Chance(40)) out << ", COUNT(*) + 1 AS agg1";
      if (Chance(40)) out << ", " << agg_var << ".TagId";
    }
    return out.str();
  }

  /// One family: skeleton decisions (components, negation slot, equivalence
  /// class, which variables carry a single-variable predicate, RETURN
  /// shape) are rolled once; per member only comparison ops, constants and
  /// the WITHIN span vary. Families are always SEQ patterns of >= 2
  /// positives — a single-event family would share trivially.
  std::vector<std::string> FamilyCandidate(int count) {
    static const char* kVars[] = {"a", "b", "c", "d", "e"};
    static const char* kOps[] = {"=", "!=", "<", ">"};

    int positives = 2 + Roll(3);
    int components = positives;
    int negated_slot = -1;
    if (Chance(50)) {
      components = positives + 1;
      negated_slot = Roll(components);
    }
    bool head_or_tail_negation =
        negated_slot == 0 || negated_slot == components - 1;
    // Boundedness is part of the group key, so the whole family is either
    // windowed (spans vary) or WITHIN-less.
    bool with_window = head_or_tail_negation || Chance(85);

    std::vector<const char*> types;
    for (int i = 0; i < components; ++i) types.push_back(RandomType());
    bool with_eq = Chance(85);
    const char* eq_attr = Chance(70) ? "TagId" : "AreaId";
    std::vector<bool> pred_on(static_cast<size_t>(components), false);
    for (int i = 0; i < components; ++i) {
      pred_on[static_cast<size_t>(i)] = Chance(35);
    }
    std::string agg_var;
    for (int i = 0; i < components; ++i) {
      if (i != negated_slot) {
        agg_var = kVars[i];
        break;
      }
    }
    int ret = Roll(100);

    std::vector<std::string> family;
    for (int member = 0; member < count; ++member) {
      std::ostringstream out;
      out << "EVENT SEQ(";
      for (int i = 0; i < components; ++i) {
        if (i > 0) out << ", ";
        bool negate = i == negated_slot;
        if (negate) out << "!(";
        out << types[static_cast<size_t>(i)] << " " << kVars[i];
        if (negate) out << ")";
      }
      out << ")";

      std::vector<std::string> conjuncts;
      if (with_eq) {
        for (int i = 1; i < components; ++i) {
          conjuncts.push_back(std::string(kVars[0]) + "." + eq_attr + " = " +
                              kVars[i] + "." + eq_attr);
        }
      }
      for (int i = 0; i < components; ++i) {
        if (!pred_on[static_cast<size_t>(i)]) continue;
        conjuncts.push_back(std::string(kVars[i]) + ".AreaId " +
                            kOps[Roll(4)] + " " + std::to_string(Roll(4)));
      }
      if (!conjuncts.empty()) {
        out << " WHERE ";
        for (size_t i = 0; i < conjuncts.size(); ++i) {
          if (i > 0) out << " AND ";
          out << conjuncts[i];
        }
      }
      if (with_window) out << " WITHIN " << 20 + Roll(6) * 35;
      if (ret < 40) {
        // default projection
      } else if (ret < 75) {
        out << " RETURN " << agg_var << ".TagId, " << agg_var << ".AreaId";
      } else {
        out << " RETURN COUNT(*) AS agg0, " << agg_var << ".TagId";
      }
      family.push_back(out.str());
    }
    return family;
  }

  const Catalog* catalog_;
  std::mt19937_64 rng_;
};

/// Builds the whole differential case for `seed`: 1-3 generated queries and
/// a seeded synthetic stream sized for CI.
inline GeneratedCase GenerateCase(const Catalog& catalog, uint64_t seed,
                                  int64_t event_count) {
  GeneratedCase result;
  result.seed = seed;
  QueryGenerator generator(&catalog, seed);
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  int query_count = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < query_count; ++i) {
    result.queries.push_back(generator.NextQuery());
  }
  SyntheticConfig config;
  config.seed = seed * 2654435761u + 1;
  config.event_count = event_count;
  config.tag_count = 8 + static_cast<int64_t>(rng() % 25);
  config.area_count = 4;
  SyntheticStreamGenerator stream(&catalog, config);
  result.events = stream.Generate();
  // Drawn after the stream parameters so pre-existing cases keep their
  // exact queries and events under the same seed.
  static const uint64_t kIntervals[] = {1, 4, 16};
  static const uint64_t kStrides[] = {1, 2, 3};
  static const int kStalls[] = {100, 85, 60};
  result.ack_plan.ack_commit_interval = kIntervals[rng() % 3];
  result.ack_plan.ack_stride = kStrides[rng() % 3];
  result.ack_plan.stall_after_percent = kStalls[rng() % 3];
  return result;
}

/// The sharing differential case for `seed`: 1-2 families of structurally
/// identical queries (2-4 members each), plus an occasional unrelated
/// singleton riding along so the run mixes shared groups with a
/// single-member group. The stream parameters mirror GenerateCase under a
/// distinct seed expansion, so the two sweeps cover different streams.
inline GeneratedCase GenerateSharingCase(const Catalog& catalog, uint64_t seed,
                                         int64_t event_count) {
  GeneratedCase result;
  result.seed = seed;
  QueryGenerator generator(&catalog, seed);
  std::mt19937_64 rng(seed ^ 0xda3e39cb94b95bdbull);
  int families = 1 + static_cast<int>(rng() % 2);
  for (int f = 0; f < families; ++f) {
    int size = 2 + static_cast<int>(rng() % 3);
    for (std::string& text : generator.NextFamily(size)) {
      result.queries.push_back(std::move(text));
    }
  }
  if (rng() % 2 == 0) result.queries.push_back(generator.NextQuery());
  SyntheticConfig config;
  config.seed = seed * 2654435761u + 7;
  config.event_count = event_count;
  config.tag_count = 8 + static_cast<int64_t>(rng() % 25);
  config.area_count = 4;
  SyntheticStreamGenerator stream(&catalog, config);
  result.events = stream.Generate();
  return result;
}

/// The skewed-stream case for `seed`: a hot key owning `hot_percent`% of
/// the keyed events plus a rotating cold tail wider than the hot-key
/// sketch, and a query set drawn from the three mitigation families by
/// seed:
///
///   0: stateless single-event queries only — a hot key may legally be
///      spread round-robin (replicable-query routing);
///   1: stateful patterns whose equivalence classes cover TagId AND AreaId
///      on every component (negations included) — a hot key may legally be
///      sub-partitioned by (TagId, AreaId);
///   2: stateful patterns covering only TagId — splitting must be refused
///      and the key stays pinned.
///
/// All three families must stay byte-identical to the serial reference
/// with mitigation on or off; they differ only in which routing the
/// mitigation may legally choose.
inline GeneratedCase GenerateSkewedCase(const Catalog& catalog, uint64_t seed,
                                        int64_t event_count,
                                        int hot_percent) {
  GeneratedCase result;
  result.seed = seed;
  std::mt19937_64 rng(seed ^ 0xc2b2ae3d27d4eb4full);
  int family = static_cast<int>(seed % 3);
  int window = 20 + static_cast<int>(rng() % 4) * 30;
  switch (family) {
    case 0:
      result.queries.push_back("EVENT SHELF_READING a WHERE a.AreaId >= " +
                               std::to_string(rng() % 3) +
                               " RETURN a.TagId, a.AreaId");
      result.queries.push_back("EVENT EXIT_READING a WHERE a.AreaId != " +
                               std::to_string(rng() % 4) +
                               " RETURN a.TagId");
      break;
    case 1:
      result.queries.push_back(
          "EVENT SEQ(SHELF_READING a, EXIT_READING b) "
          "WHERE a.TagId = b.TagId AND a.AreaId = b.AreaId WITHIN " +
          std::to_string(window));
      result.queries.push_back(
          "EVENT SEQ(SHELF_READING a, !(COUNTER_READING b), EXIT_READING c) "
          "WHERE a.TagId = b.TagId AND a.TagId = c.TagId "
          "AND a.AreaId = b.AreaId AND a.AreaId = c.AreaId WITHIN " +
          std::to_string(window + 15) + " RETURN a.TagId, a.AreaId");
      break;
    default:
      result.queries.push_back(
          "EVENT SEQ(SHELF_READING a, EXIT_READING b) "
          "WHERE a.TagId = b.TagId WITHIN " + std::to_string(window) +
          " RETURN a.TagId");
      break;
  }
  // The clock advances irregularly so windows open and close; every retail
  // type carries TagId, so every event is keyed.
  static const char* kTypes[] = {"SHELF_READING", "COUNTER_READING",
                                 "EXIT_READING"};
  Timestamp ts = 1;
  int cold = 0;
  for (int64_t i = 0; i < event_count; ++i) {
    std::string tag = static_cast<int>(rng() % 100) < hot_percent
                          ? "HOT"
                          : "cold-" + std::to_string(cold++ % 40);
    EventBuilder builder(catalog, kTypes[rng() % 3]);
    builder.Set("TagId", tag)
        .Set("AreaId", static_cast<int64_t>(rng() % 4))
        .Set("ProductName", "P");
    auto event = builder.Build(ts, static_cast<SequenceNumber>(i));
    if (event.ok()) result.events.push_back(std::move(event).value());
    ts += static_cast<Timestamp>(rng() % 3);
  }
  return result;
}

}  // namespace testgen
}  // namespace sase

#endif  // SASE_TESTS_QUERY_GEN_H_
