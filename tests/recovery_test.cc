// End-to-end kill-and-recover tests for the durable checkpoint subsystem:
// a SaseSystem is checkpointed mid-stream, "crashed" (destroyed without a
// flush), recovered from disk, and driven to the end of the stream — the
// concatenation of the crashed process's output and the recovered
// process's output must be byte-identical to one uninterrupted serial run,
// including flush-released tail-negation deferrals, at 1 and 8 shards and
// across randomized crash offsets.

#include "system/sase_system.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "checkpoint/journal.h"
#include "checkpoint/snapshot.h"
#include "db/dump.h"
#include "query/parser.h"
#include "rfid/workload.h"

namespace sase {
namespace {

/// Mixed monitoring workload: key-partitioned middle and tail negation
/// (sharded, stateful, deferral-heavy), a stateless projection, and a
/// non-key pattern that lands on the broadcast worker — exercising the
/// checkpoint's broadcast-window retention.
const std::vector<std::string> kQueries = {
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 120",
    "EVENT SEQ(SHELF_READING x, COUNTER_READING y, !(EXIT_READING z)) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 60 "
    "RETURN x.TagId, x.Timestamp AS shelf_ts, y.Timestamp AS counter_ts",
    "EVENT SHELF_READING s WHERE s.AreaId = 2 RETURN s.TagId, s.AreaId",
    "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
    "WHERE x.AreaId = z.AreaId WITHIN 40",
};

/// The state classes snapshot v2's direct operator-state serialization
/// lifted into checkpoint coverage (they all refused with
/// kFailedPrecondition under the v1 window-replay recipe): running
/// aggregates mid-fold, a stateful pattern with no WITHIN bound, and
/// MIN/MAX/AVG folds — mixed with a windowed tail-negation query so the
/// new classes coexist with parked deferral state.
const std::vector<std::string> kV2Queries = {
    "EVENT EXIT_READING e RETURN COUNT(*) AS exits, SUM(e.AreaId) AS areas, "
    "AVG(e.AreaId) AS avg_area",
    "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId "
    "RETURN x.TagId, z.Timestamp AS exit_ts",
    "EVENT SHELF_READING s "
    "RETURN MIN(s.AreaId) AS lo, MAX(s.AreaId) AS hi, COUNT(s.TagId) AS n",
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 120",
};

/// Register kQueries[query] as "q<query>" just before feeding the event at
/// `offset` (offset == trace size: register after the last event).
struct RegistrationPoint {
  size_t offset = 0;
  size_t query = 0;
};

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/sase_recovery_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<EventPtr> Trace(const Catalog& catalog, int64_t count) {
  SyntheticConfig config;
  config.seed = 7;
  config.event_count = count;
  config.tag_count = 40;
  config.area_count = 4;
  SyntheticStreamGenerator generator(&catalog, config);
  return generator.Generate();
}

std::string QueryName(size_t query) { return "q" + std::to_string(query); }

OutputCallback Collector(std::vector<std::string>* lines, size_t query) {
  return [lines, query](const OutputRecord& record) {
    lines->push_back(QueryName(query) + "|" + record.ToString());
  };
}

/// The uninterrupted reference: the same workload through one serial
/// QueryEngine, registrations interleaved at the same offsets.
std::vector<std::string> RunGolden(const Catalog& catalog,
                                   const std::vector<EventPtr>& trace,
                                   const std::vector<RegistrationPoint>& regs,
                                   bool flush = true,
                                   const std::vector<std::string>& queries = kQueries) {
  std::vector<std::string> lines;
  QueryEngine engine(&catalog);
  for (size_t i = 0; i <= trace.size(); ++i) {
    for (const RegistrationPoint& reg : regs) {
      if (reg.offset != i) continue;
      auto id = engine.Register(queries[reg.query], Collector(&lines, reg.query));
      EXPECT_TRUE(id.ok()) << id.status().ToString();
    }
    if (i < trace.size()) engine.OnEvent(trace[i]);
  }
  if (flush) engine.OnFlush();
  return lines;
}

SystemConfig CheckpointedConfig(int shards, const std::string& dir,
                                size_t merge_interval = 64) {
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = shards;
  config.runtime_merge_interval = merge_interval;
  config.checkpoint.dir = dir;
  return config;
}

SaseSystem::CallbackFactory Factory(std::vector<std::string>* lines) {
  return [lines](const std::string& name) -> OutputCallback {
    size_t query = static_cast<size_t>(std::atoi(name.c_str() + 1));
    return Collector(lines, query);
  };
}

constexpr size_t kNoCheckpoint = static_cast<size_t>(-1);

/// Drives the crashed process: registers per `regs`, checkpoints before
/// feeding the event at `checkpoint_at`, feeds events [0, crash_at) and
/// dies without flushing. Output is appended to `lines`.
void RunUntilCrash(const std::vector<EventPtr>& trace,
                   const std::vector<RegistrationPoint>& regs,
                   const SystemConfig& config, size_t checkpoint_at,
                   size_t crash_at, std::vector<std::string>* lines,
                   uint64_t* checkpoints_taken = nullptr,
                   const std::vector<std::string>& queries = kQueries) {
  SaseSystem system(StoreLayout::RetailDemo(), config);
  for (size_t i = 0; i < crash_at; ++i) {
    for (const RegistrationPoint& reg : regs) {
      if (reg.offset != i) continue;
      auto id = system.RegisterMonitoringQuery(QueryName(reg.query),
                                               queries[reg.query],
                                               Collector(lines, reg.query));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    if (i == checkpoint_at) {
      Status taken = system.Checkpoint();
      ASSERT_TRUE(taken.ok()) << taken.ToString();
    }
    system.event_bus().OnEvent(trace[i]);
  }
  if (checkpoints_taken != nullptr) *checkpoints_taken = system.checkpoints_taken();
  // Falling out of scope without Flush == the crash: nothing is persisted
  // beyond what the write-ahead journal and the last snapshot already hold.
}

/// Recovers from `dir` and drives the stream to the end (+flush).
void RecoverAndFinish(const std::vector<EventPtr>& trace,
                      const std::vector<RegistrationPoint>& regs,
                      const SystemConfig& config, size_t crash_at,
                      std::vector<std::string>* lines,
                      const std::vector<std::string>& queries = kQueries) {
  auto recovered = SaseSystem::Recover(config.checkpoint.dir,
                                       StoreLayout::RetailDemo(), config,
                                       Factory(lines));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  SaseSystem& system = *recovered.value();
  for (size_t i = crash_at; i <= trace.size(); ++i) {
    for (const RegistrationPoint& reg : regs) {
      if (reg.offset != i) continue;
      auto id = system.RegisterMonitoringQuery(QueryName(reg.query),
                                               queries[reg.query],
                                               Collector(lines, reg.query));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    if (i < trace.size()) system.event_bus().OnEvent(trace[i]);
  }
  system.Flush();
}

/// Whole kill-and-recover cycle; returns the concatenated output.
std::vector<std::string> CrashRecoverRun(
    const std::vector<EventPtr>& trace,
    const std::vector<RegistrationPoint>& regs, int shards,
    size_t checkpoint_at, size_t crash_at, const std::string& dir,
    const std::vector<std::string>& queries = kQueries) {
  std::vector<std::string> lines;
  SystemConfig config = CheckpointedConfig(shards, dir);
  RunUntilCrash(trace, regs, config, checkpoint_at, crash_at, &lines, nullptr,
                queries);
  RecoverAndFinish(trace, regs, config, crash_at, &lines, queries);
  return lines;
}

std::vector<RegistrationPoint> AllUpfront() {
  return {{0, 0}, {0, 1}, {0, 2}, {0, 3}};
}

TEST(RecoveryGoldenTest, KillAndRecoverByteIdenticalAtOneAndEightShards) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1200);
  auto regs = AllUpfront();
  auto golden = RunGolden(catalog, trace, regs);
  ASSERT_GT(golden.size(), 100u);  // non-trivial workload

  for (int shards : {1, 8}) {
    std::string dir = FreshDir("golden_" + std::to_string(shards));
    auto lines = CrashRecoverRun(trace, regs, shards, /*checkpoint_at=*/500,
                                 /*crash_at=*/900, dir);
    EXPECT_EQ(golden, lines) << "shards=" << shards;
  }
}

TEST(RecoveryGoldenTest, RandomizedCrashOffsetsStayByteIdentical) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1200);
  auto regs = AllUpfront();
  auto golden = RunGolden(catalog, trace, regs);

  // Crash offsets chosen to land mid-batch (not multiples of the runtime's
  // batch or merge cadence) and inside tail-negation windows; 501 crashes
  // one event after the checkpoint, 1199 one before the end.
  for (size_t crash_at : {501u, 537u, 640u, 811u, 1000u, 1199u}) {
    std::string dir = FreshDir("offset_" + std::to_string(crash_at));
    auto lines = CrashRecoverRun(trace, regs, /*shards=*/2,
                                 /*checkpoint_at=*/500, crash_at, dir);
    EXPECT_EQ(golden, lines) << "crash_at=" << crash_at;
  }

  // Journal-only recovery: the process dies before its first checkpoint —
  // the whole prefix replays from the write-ahead journal alone.
  for (size_t crash_at : {353u, 750u}) {
    std::string dir = FreshDir("journal_only_" + std::to_string(crash_at));
    auto lines = CrashRecoverRun(trace, regs, /*shards=*/2, kNoCheckpoint,
                                 crash_at, dir);
    EXPECT_EQ(golden, lines) << "journal-only crash_at=" << crash_at;
  }
}

TEST(RecoveryGoldenTest, MidJournalRegistrationIsReplayed) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1200);
  // q1 registers after the checkpoint (its registration only exists in the
  // journal), q3 after the crash (registered on the recovered system).
  std::vector<RegistrationPoint> regs = {{0, 0}, {650, 1}, {300, 2}, {950, 3}};
  auto golden = RunGolden(catalog, trace, regs);
  ASSERT_GT(golden.size(), 50u);

  std::string dir = FreshDir("midreg");
  auto lines = CrashRecoverRun(trace, regs, /*shards=*/2, /*checkpoint_at=*/500,
                               /*crash_at=*/900, dir);
  EXPECT_EQ(golden, lines);
}

TEST(RecoveryGoldenTest, AutomaticCheckpointPolicyCoversTheCrash) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1200);
  auto regs = AllUpfront();
  auto golden = RunGolden(catalog, trace, regs);

  std::string dir = FreshDir("auto_policy");
  SystemConfig config = CheckpointedConfig(/*shards=*/2, dir);
  config.checkpoint.checkpoint_interval_events = 200;
  std::vector<std::string> lines;
  uint64_t taken = 0;
  RunUntilCrash(trace, regs, config, kNoCheckpoint, /*crash_at=*/730, &lines,
                &taken);
  EXPECT_GE(taken, 3u);  // the policy checkpointed on its own
  RecoverAndFinish(trace, regs, config, /*crash_at=*/730, &lines);
  EXPECT_EQ(golden, lines);
}

TEST(RecoveryGoldenTest, CorruptJournalTailRecoversTheValidPrefix) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1200);
  auto regs = AllUpfront();
  // Reference without end-of-stream flush: the truncated run never reaches
  // a flush, so the comparable property is prefix equality.
  auto golden_noflush = RunGolden(catalog, trace, regs, /*flush=*/false);

  std::string dir = FreshDir("corrupt_tail");
  SystemConfig config = CheckpointedConfig(/*shards=*/2, dir);
  std::vector<std::string> lines;
  RunUntilCrash(trace, regs, config, /*checkpoint_at=*/500, /*crash_at=*/900,
                &lines);
  size_t crashed_lines = lines.size();

  // Tear the live journal segment mid-record, as a crash during an append
  // would. Epoch 1 = the journal opened by the checkpoint at offset 500.
  std::string segment = dir + "/" + checkpoint::SegmentFileName(1, 0);
  ASSERT_TRUE(std::filesystem::exists(segment));
  auto size = std::filesystem::file_size(segment);
  std::filesystem::resize_file(segment, size - 7);

  std::vector<std::string> recovered_lines;
  auto recovered = SaseSystem::Recover(dir, StoreLayout::RetailDemo(), config,
                                       Factory(&recovered_lines));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered.value()->recovered_journal_truncated());
  EXPECT_GT(recovered.value()->recovered_journal_records(), 0u);

  // Recovery stopped cleanly at the last valid record: the combined output
  // is byte-identical to a prefix of the uninterrupted run — no duplicates,
  // no gaps, no garbage from the torn tail.
  lines.insert(lines.end(), recovered_lines.begin(), recovered_lines.end());
  ASSERT_GE(lines.size(), crashed_lines);
  ASSERT_LE(lines.size(), golden_noflush.size());
  EXPECT_TRUE(std::equal(lines.begin(), lines.end(), golden_noflush.begin()))
      << "combined output is not a golden prefix";

  // Chained crash: the first recovery must have cut the torn tail out of
  // the segment, or this second scan would stop at the OLD crash point and
  // silently drop everything journaled since. Feed more events on the
  // recovered system, crash again without a checkpoint in between, recover
  // again: the second scan must be clean and cover the new events.
  uint64_t first_replay = recovered.value()->recovered_journal_records();
  constexpr size_t kMoreEvents = 200;
  for (size_t i = 900; i < 900 + kMoreEvents; ++i) {
    recovered.value()->event_bus().OnEvent(trace[i]);
  }
  recovered.value().reset();  // second crash, un-flushed

  std::vector<std::string> second_lines;
  auto second = SaseSystem::Recover(dir, StoreLayout::RetailDemo(), config,
                                    Factory(&second_lines));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(second.value()->recovered_journal_truncated());
  EXPECT_GE(second.value()->recovered_journal_records(),
            first_replay + kMoreEvents);
}

TEST(RecoveryGoldenTest, EventDatabaseRecoversExactly) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1000);
  constexpr const char* kLocationRule =
      "EVENT ANY(SHELF_READING s) "
      "RETURN _updateLocation(s.TagId, s.AreaId, s.Timestamp)";

  // Uninterrupted reference run (checkpointing off; archiving rules always
  // execute on the serial engine, so hosting differences cannot leak in).
  std::string golden_dump;
  {
    SystemConfig config;
    config.noise = NoiseModel::Perfect();
    config.shard_count = 2;
    SaseSystem system(StoreLayout::RetailDemo(), config);
    ASSERT_TRUE(system.RegisterArchivingRule("loc", kLocationRule).ok());
    for (const auto& event : trace) system.event_bus().OnEvent(event);
    system.Flush();
    std::ostringstream out;
    ASSERT_TRUE(db::Dump(system.database(), &out).ok());
    golden_dump = out.str();
  }

  std::string dir = FreshDir("database");
  SystemConfig config = CheckpointedConfig(/*shards=*/2, dir);
  {
    SaseSystem system(StoreLayout::RetailDemo(), config);
    ASSERT_TRUE(system.RegisterArchivingRule("loc", kLocationRule).ok());
    for (size_t i = 0; i < 800; ++i) {
      if (i == 400) ASSERT_TRUE(system.Checkpoint().ok());
      system.event_bus().OnEvent(trace[i]);
    }
  }
  auto recovered = SaseSystem::Recover(dir, StoreLayout::RetailDemo(), config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  for (size_t i = 800; i < trace.size(); ++i) {
    recovered.value()->event_bus().OnEvent(trace[i]);
  }
  recovered.value()->Flush();

  std::ostringstream out;
  ASSERT_TRUE(db::Dump(recovered.value()->database(), &out).ok());
  EXPECT_EQ(golden_dump, out.str());

  // The restored Event Database also answers track-and-trace queries.
  auto locations = recovered.value()->ExecuteSql(
      "SELECT * FROM location_history LIMIT 5");
  EXPECT_TRUE(locations.ok()) << locations.status().ToString();
}

TEST(RecoveryPreconditionTest, CheckpointDuringResizeIsRefused) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 400);
  std::string dir = FreshDir("during_resize");
  // merge_interval 0: no incremental merges, so records are still pending
  // when Resize quiesces — its delivery callbacks run mid-resize.
  SystemConfig config = CheckpointedConfig(/*shards=*/2, dir,
                                           /*merge_interval=*/0);
  SaseSystem system(StoreLayout::RetailDemo(), config);

  std::vector<Status> during_resize;
  auto id = system.RegisterMonitoringQuery(
      "q0", kQueries[0], [&](const OutputRecord&) {
        if (system.runtime()->resizing() && during_resize.empty()) {
          during_resize.push_back(system.Checkpoint());
        }
      });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  for (const auto& event : trace) system.event_bus().OnEvent(event);

  Status resized = system.runtime()->Resize(4);
  ASSERT_TRUE(resized.ok()) << resized.ToString();
  ASSERT_FALSE(during_resize.empty())
      << "no records were delivered at the resize quiesce point";
  EXPECT_EQ(during_resize.front().code(), StatusCode::kFailedPrecondition)
      << during_resize.front().ToString();

  // After the resize completes, the same checkpoint succeeds.
  EXPECT_TRUE(system.Checkpoint().ok());
}

TEST(RecoveryPreconditionTest, PreParsedAstQueryRefusesCheckpointByName) {
  // The one per-query refusal left after snapshot v2: a query registered
  // from a pre-parsed AST has no text to re-register on recovery. The error
  // names the offender.
  std::string dir = FreshDir("preparsed");
  SaseSystem system(StoreLayout::RetailDemo(),
                    CheckpointedConfig(/*shards=*/2, dir));
  auto parsed = Parser::Parse("EVENT SHELF_READING s RETURN s.TagId");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto id = system.engine().Register(std::move(parsed).value(),
                                     [](const OutputRecord&) {});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  Status refused = system.Checkpoint();
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition)
      << refused.ToString();
  EXPECT_NE(refused.message().find("#" + std::to_string(id.value())),
            std::string::npos)
      << refused.ToString();
  EXPECT_NE(refused.message().find("pre-parsed AST"), std::string::npos)
      << refused.ToString();
}

// --- snapshot v2: state classes lifted into checkpoint coverage ----------

/// Randomized crash offsets in (checkpoint_at, trace_size], seeded so CI is
/// reproducible; the seed and offsets ride in the failure message.
std::vector<size_t> RandomCrashOffsets(uint64_t seed, size_t checkpoint_at,
                                       size_t trace_size, size_t count) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<size_t> dist(checkpoint_at + 1, trace_size);
  std::vector<size_t> offsets;
  for (size_t i = 0; i < count; ++i) offsets.push_back(dist(rng));
  return offsets;
}

TEST(RecoveryV2Test, AggregatesCheckpointMidFoldAndRecover) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1200);
  // All four kV2Queries up front: COUNT/SUM/AVG and MIN/MAX folds mid-fold
  // at the checkpoint, a WITHIN-less stateful pattern, and a windowed
  // tail-negation query.
  std::vector<RegistrationPoint> regs = {{0, 0}, {0, 1}, {0, 2}, {0, 3}};
  auto golden = RunGolden(catalog, trace, regs, /*flush=*/true, kV2Queries);
  ASSERT_GT(golden.size(), 100u);

  for (int shards : {1, 8}) {
    for (size_t crash_at : RandomCrashOffsets(/*seed=*/41, /*checkpoint_at=*/500,
                                              trace.size(), /*count=*/3)) {
      std::string dir = FreshDir("v2_agg_" + std::to_string(shards) + "_" +
                                 std::to_string(crash_at));
      auto lines = CrashRecoverRun(trace, regs, shards, /*checkpoint_at=*/500,
                                   crash_at, dir, kV2Queries);
      EXPECT_EQ(golden, lines)
          << "seed=41 shards=" << shards << " crash_at=" << crash_at;
    }
  }
}

TEST(RecoveryV2Test, WithinLessStatefulQueryRecoversAcrossLateCheckpoint) {
  // The WITHIN-less pattern's stacks reach back to the beginning of the
  // stream; a late checkpoint must carry them whole (no finite replay
  // window exists — exactly what v1 refused).
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1200);
  std::vector<RegistrationPoint> regs = {{0, 1}, {0, 0}};
  auto golden = RunGolden(catalog, trace, regs, /*flush=*/true, kV2Queries);
  ASSERT_GT(golden.size(), 50u);

  for (int shards : {1, 8}) {
    for (size_t crash_at : RandomCrashOffsets(/*seed=*/43, /*checkpoint_at=*/900,
                                              trace.size(), /*count=*/3)) {
      std::string dir = FreshDir("v2_unbounded_" + std::to_string(shards) +
                                 "_" + std::to_string(crash_at));
      auto lines = CrashRecoverRun(trace, regs, shards, /*checkpoint_at=*/900,
                                   crash_at, dir, kV2Queries);
      EXPECT_EQ(golden, lines)
          << "seed=43 shards=" << shards << " crash_at=" << crash_at;
    }
  }
}

/// Hybrid stream+database monitoring query (serial-engine hosted) plus an
/// archiving rule and a runtime-hosted query. Serial-class and
/// runtime-class deliveries interleave cadence-dependently, so the
/// byte-identity contract is per query: each query's own line sequence
/// must equal the uninterrupted run's.
TEST(RecoveryV2Test, HybridSerialEngineQueryRecoversByteIdentical) {
  const std::string kHybrid =
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId "
      "WITHIN 80 RETURN x.TagId, _retrieveLocation(z.AreaId) AS last_seen";
  const std::string kRule =
      "EVENT ANY(SHELF_READING s) "
      "RETURN _updateLocation(s.TagId, s.AreaId, s.Timestamp)";

  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1000);

  using PerQuery = std::map<std::string, std::vector<std::string>>;
  auto collector = [](PerQuery* out, const std::string& name) -> OutputCallback {
    return [out, name](const OutputRecord& record) {
      (*out)[name].push_back(record.ToString());
    };
  };
  auto drive = [&](SaseSystem& system, PerQuery* out, size_t from, size_t to,
                   bool flush) {
    if (from == 0) {
      ASSERT_TRUE(system.RegisterArchivingRule("loc", kRule).ok());
      ASSERT_TRUE(system
                      .RegisterMonitoringQuery("hybrid", kHybrid,
                                               collector(out, "hybrid"))
                      .ok());
      ASSERT_TRUE(system
                      .RegisterMonitoringQuery("q0", kQueries[0],
                                               collector(out, "q0"))
                      .ok());
    }
    for (size_t i = from; i < to; ++i) system.event_bus().OnEvent(trace[i]);
    if (flush) system.Flush();
  };

  for (int shards : {1, 8}) {
    // Uninterrupted reference under the same config (fresh directory).
    PerQuery golden;
    {
      SaseSystem system(
          StoreLayout::RetailDemo(),
          CheckpointedConfig(shards, FreshDir("v2_hybrid_golden_" +
                                              std::to_string(shards))));
      drive(system, &golden, 0, trace.size(), /*flush=*/true);
    }
    ASSERT_GT(golden["hybrid"].size(), 20u);
    ASSERT_GT(golden["q0"].size(), 20u);

    for (size_t crash_at : RandomCrashOffsets(/*seed=*/47, /*checkpoint_at=*/400,
                                              trace.size(), /*count=*/3)) {
      std::string dir = FreshDir("v2_hybrid_" + std::to_string(shards) + "_" +
                                 std::to_string(crash_at));
      SystemConfig config = CheckpointedConfig(shards, dir);
      PerQuery lines;
      {
        SaseSystem system(StoreLayout::RetailDemo(), config);
        drive(system, &lines, 0, 400, /*flush=*/false);
        ASSERT_TRUE(system.Checkpoint().ok());
        for (size_t i = 400; i < crash_at; ++i) {
          system.event_bus().OnEvent(trace[i]);
        }
        // Crash: destroyed without a flush.
      }
      auto recovered = SaseSystem::Recover(
          dir, StoreLayout::RetailDemo(), config,
          [&](const std::string& name) { return collector(&lines, name); });
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      for (size_t i = crash_at; i < trace.size(); ++i) {
        recovered.value()->event_bus().OnEvent(trace[i]);
      }
      recovered.value()->Flush();
      EXPECT_EQ(golden, lines)
          << "seed=47 shards=" << shards << " crash_at=" << crash_at;
    }
  }
}

// --- snapshot format compatibility ---------------------------------------

/// The checked-in v1 snapshot fixture (written by the PR-4-era code, no
/// engine.sase, no manifest format line) must recover on the v2 reader via
/// the muted window-replay path, byte-identically to a serial engine that
/// saw the fixture's in-flight window.
TEST(SnapshotCompatTest, V1FixtureRecoversOnTheV2Reader) {
  namespace fs = std::filesystem;
  fs::path fixture =
      fs::path(__FILE__).parent_path() / "data" / "v1_checkpoint";
  ASSERT_TRUE(fs::exists(fixture / "MANIFEST")) << fixture;

  // Recovery journals into the directory; work on a copy, not the fixture.
  std::string dir = FreshDir("v1_fixture");
  fs::copy(fixture, dir, fs::copy_options::recursive |
                             fs::copy_options::overwrite_existing);

  // The fixture's window: six SHELF_READINGs ts 1..6 for TAG-1..TAG-3, one
  // windowed SEQ query registered before them. The continuation events
  // complete matches against that window, so output only appears if the
  // v1 snapshot's replay recipe actually rebuilt the stacks.
  Catalog catalog = Catalog::RetailDemo();
  const std::string kFixtureQuery =
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId "
      "WITHIN 100 RETURN x.TagId, z.Timestamp AS exit_ts";
  std::vector<EventPtr> window;
  const char* kTags[] = {"TAG-1", "TAG-2", "TAG-3"};
  for (int i = 1; i <= 6; ++i) {
    EventBuilder builder(catalog, "SHELF_READING");
    auto event = builder.Set("TagId", kTags[(i - 1) % 3])
                     .Set("AreaId", (i + 1) / 2)
                     .Set("ProductName", "Soap")
                     .Build(i, static_cast<SequenceNumber>(i));
    ASSERT_TRUE(event.ok()) << event.status().ToString();
    window.push_back(std::move(event).value());
  }
  std::vector<EventPtr> suffix;
  for (int i = 0; i < 2; ++i) {
    EventBuilder builder(catalog, "EXIT_READING");
    auto event = builder.Set("TagId", kTags[i * 2])  // TAG-1, TAG-3
                     .Set("AreaId", 3)
                     .Set("ProductName", "Soap")
                     .Build(10 + i, static_cast<SequenceNumber>(7 + i));
    ASSERT_TRUE(event.ok()) << event.status().ToString();
    suffix.push_back(std::move(event).value());
  }

  std::vector<std::string> golden;
  {
    QueryEngine engine(&catalog);
    std::vector<std::string> all;
    ASSERT_TRUE(engine.Register(kFixtureQuery, Collector(&all, 0)).ok());
    for (const EventPtr& event : window) engine.OnEvent(event);
    size_t before = all.size();
    for (const EventPtr& event : suffix) engine.OnEvent(event);
    engine.OnFlush();
    golden.assign(all.begin() + static_cast<ptrdiff_t>(before), all.end());
  }
  ASSERT_GE(golden.size(), 4u);  // TAG-1 and TAG-3 each match twice

  std::vector<std::string> lines;
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  auto recovered = SaseSystem::Recover(dir, StoreLayout::RetailDemo(), config,
                                       Factory(&lines));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->config().shard_count, 2);  // from the snapshot
  for (const EventPtr& event : suffix) {
    recovered.value()->event_bus().OnEvent(event);
  }
  recovered.value()->Flush();
  EXPECT_EQ(golden, lines);

  // The fixture's Event Database rode along.
  auto area = recovered.value()->ExecuteSql(
      "SELECT Description FROM area_directory LIMIT 1");
  EXPECT_TRUE(area.ok()) << area.status().ToString();
}

/// A damaged engine-state section must fail the whole recovery with a clear
/// error — never restore half a system.
TEST(SnapshotCompatTest, CorruptEngineStateSectionFailsRecoveryCleanly) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 400);
  std::string dir = FreshDir("corrupt_section");
  SystemConfig config = CheckpointedConfig(/*shards=*/2, dir);
  {
    SaseSystem system(StoreLayout::RetailDemo(), config);
    std::vector<std::string> ignored;
    ASSERT_TRUE(system
                    .RegisterMonitoringQuery("agg", kV2Queries[0],
                                             Collector(&ignored, 0))
                    .ok());
    for (size_t i = 0; i < 300; ++i) system.event_bus().OnEvent(trace[i]);
    ASSERT_TRUE(system.Checkpoint().ok());
    for (size_t i = 300; i < 350; ++i) system.event_bus().OnEvent(trace[i]);
  }

  // Flip one byte inside the first section's payload (the byte right after
  // the SECTION header line), breaking its CRC.
  std::string path = dir + "/snap-1/engine.sase";
  ASSERT_TRUE(std::filesystem::exists(path));
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    contents = buffer.str();
  }
  size_t section = contents.find("SECTION ");
  ASSERT_NE(section, std::string::npos);
  size_t payload = contents.find('\n', section);
  ASSERT_NE(payload, std::string::npos);
  contents[payload + 1] ^= 0x20;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  std::vector<std::string> lines;
  auto recovered = SaseSystem::Recover(dir, StoreLayout::RetailDemo(), config,
                                       Factory(&lines));
  ASSERT_FALSE(recovered.ok()) << "recovered from a corrupt checkpoint";
  EXPECT_EQ(recovered.status().code(), StatusCode::kParseError)
      << recovered.status().ToString();
  EXPECT_NE(recovered.status().message().find("engine-state section"),
            std::string::npos)
      << recovered.status().ToString();
  EXPECT_NE(recovered.status().message().find("CRC"), std::string::npos)
      << recovered.status().ToString();
  EXPECT_TRUE(lines.empty()) << "partial restore delivered output";
}

TEST(RecoveryV2Test, CrashOnJournalSegmentRotationBoundaryWithFsyncAlways) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 900);
  std::vector<RegistrationPoint> regs = {{0, 0}, {0, 1}, {0, 2}, {0, 3}};
  auto golden = RunGolden(catalog, trace, regs, /*flush=*/true, kV2Queries);

  auto config_for = [&](const std::string& dir) {
    SystemConfig config = CheckpointedConfig(/*shards=*/2, dir);
    config.checkpoint.journal_rotate_bytes = 4096;  // rotate every few dozen
    config.checkpoint.journal_fsync = checkpoint::FsyncPolicy::kAlways;
    return config;
  };

  // Probe run with identical config: journal byte counts are a
  // deterministic function of the event contents, so the offsets where a
  // new segment file appears are the same in the measured runs below.
  std::vector<size_t> boundaries;
  {
    std::string dir = FreshDir("rotation_probe");
    SystemConfig config = config_for(dir);
    std::vector<std::string> ignored;
    SaseSystem system(StoreLayout::RetailDemo(), config);
    for (size_t i = 0; i < regs.size(); ++i) {
      ASSERT_TRUE(system
                      .RegisterMonitoringQuery(QueryName(regs[i].query),
                                               kV2Queries[regs[i].query],
                                               Collector(&ignored,
                                                         regs[i].query))
                      .ok());
    }
    size_t segments = 1;
    for (size_t i = 0; i < trace.size(); ++i) {
      system.event_bus().OnEvent(trace[i]);
      size_t now = 0;
      for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().filename().string().rfind("journal-", 0) == 0) ++now;
      }
      if (now > segments) {
        segments = now;
        // i+1 = crash immediately after the append that rotated segments.
        boundaries.push_back(i + 1);
      }
    }
  }
  ASSERT_GE(boundaries.size(), 2u) << "rotate_bytes too large for the trace";

  for (size_t crash_at : {boundaries[0], boundaries[1]}) {
    std::string dir = FreshDir("rotation_" + std::to_string(crash_at));
    SystemConfig config = config_for(dir);
    std::vector<std::string> lines;
    RunUntilCrash(trace, regs, config, /*checkpoint_at=*/kNoCheckpoint,
                  crash_at, &lines, nullptr, kV2Queries);
    RecoverAndFinish(trace, regs, config, crash_at, &lines, kV2Queries);
    EXPECT_EQ(golden, lines) << "rotation-boundary crash_at=" << crash_at;
  }
}

// --- exactly-once output ---------------------------------------------------

TEST(ExactlyOnceTest, IdempotentSinkDropsReDeliveredStamps) {
  std::vector<std::string> forwarded;
  auto sink = std::make_shared<IdempotentSink>(
      [&forwarded](const OutputRecord& record) {
        forwarded.push_back((record.cursor_runtime_hosted ? "r" : "s") +
                            std::to_string(record.cursor_position));
      });
  OutputCallback deliver = IdempotentSink::Wrap(sink);
  auto stamped = [](bool runtime, uint64_t position) {
    OutputRecord record;
    record.cursor_runtime_hosted = runtime;
    record.cursor_position = position;
    return record;
  };
  deliver(stamped(true, 1));
  deliver(stamped(true, 2));
  deliver(stamped(false, 1));  // the serial class has its own watermark
  deliver(stamped(true, 2));   // recovery re-delivery: dropped
  deliver(stamped(true, 1));   // covered by the watermark: dropped
  deliver(stamped(true, 3));
  deliver(stamped(false, 0));  // unstamped records always pass through
  EXPECT_EQ(sink->dropped(), 2u);
  EXPECT_EQ(forwarded,
            (std::vector<std::string>{"r1", "r2", "s1", "r3", "s0"}));
}

/// The tentpole end to end: under AckMode::kConsumer a crash re-delivers
/// everything past the DURABLE acked cursor (in-memory acks and the pending
/// group-commit batch die with the process), every re-delivery carries its
/// original cursor stamp, and a consumer that dedups by stamp sees each
/// record exactly once — byte-identical to an uninterrupted run.
TEST(ExactlyOnceTest, ConsumerAckedCursorGatesRecoveryWithOriginalStamps) {
  const std::string kHybrid =
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId "
      "WITHIN 80 RETURN x.TagId, _retrieveLocation(z.AreaId) AS last_seen";
  const std::string kRule =
      "EVENT ANY(SHELF_READING s) "
      "RETURN _updateLocation(s.TagId, s.AreaId, s.Timestamp)";

  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 800);

  // The consumer outlives both processes (its dedup state is its own
  // durability concern). It acks only every third stamp, so the watermark
  // trails delivery and the crash window is real.
  struct Consumer {
    std::map<std::string, std::vector<std::string>> lines;  // deduped
    std::map<std::pair<bool, uint64_t>, std::string> stamps;
    uint64_t duplicates = 0;
    uint64_t stamp_mismatches = 0;
    SaseSystem* system = nullptr;  // ack target; null during recovery replay
  };
  auto callback = [](Consumer* consumer,
                     const std::string& name) -> OutputCallback {
    return [consumer, name](const OutputRecord& record) {
      EXPECT_NE(record.cursor_position, 0u) << "unstamped delivery";
      std::string line = name + "|" + record.ToString();
      auto key = std::make_pair(record.cursor_runtime_hosted,
                                record.cursor_position);
      auto [it, fresh] = consumer->stamps.emplace(key, line);
      if (fresh) {
        consumer->lines[name].push_back(line);
      } else {
        ++consumer->duplicates;
        if (it->second != line) ++consumer->stamp_mismatches;
      }
      if (consumer->system != nullptr && record.cursor_position % 3 == 0) {
        Status acked = consumer->system->AckOutput(record);
        EXPECT_TRUE(acked.ok()) << acked.ToString();
      }
    };
  };
  auto register_all = [&](SaseSystem& system, Consumer* consumer) {
    ASSERT_TRUE(system.RegisterArchivingRule("loc", kRule).ok());
    ASSERT_TRUE(system
                    .RegisterMonitoringQuery("hybrid", kHybrid,
                                             callback(consumer, "hybrid"))
                    .ok());
    ASSERT_TRUE(system
                    .RegisterMonitoringQuery("q0", kQueries[0],
                                             callback(consumer, "q0"))
                    .ok());
    ASSERT_TRUE(system
                    .RegisterMonitoringQuery("q2", kQueries[2],
                                             callback(consumer, "q2"))
                    .ok());
  };
  auto config_for = [&](int shards, const std::string& dir) {
    SystemConfig config = CheckpointedConfig(shards, dir);
    config.checkpoint.ack_mode = checkpoint::AckMode::kConsumer;
    config.checkpoint.ack_commit_interval = 5;
    return config;
  };

  for (int shards : {2, 8}) {
    // Uninterrupted reference under the identical config.
    Consumer golden;
    {
      SaseSystem system(
          StoreLayout::RetailDemo(),
          config_for(shards, FreshDir("ack_golden_" + std::to_string(shards))));
      golden.system = &system;
      register_all(system, &golden);
      for (const EventPtr& event : trace) system.event_bus().OnEvent(event);
      system.Flush();
      golden.system = nullptr;
    }
    ASSERT_EQ(golden.duplicates, 0u);
    ASSERT_GT(golden.lines["hybrid"].size(), 20u);  // serial class is live
    ASSERT_GT(golden.lines["q0"].size(), 20u);      // runtime class is live

    std::string dir = FreshDir("ack_crash_" + std::to_string(shards));
    SystemConfig config = config_for(shards, dir);
    Consumer consumer;
    uint64_t crashed_acked_runtime = 0;
    uint64_t crashed_acked_serial = 0;
    {
      SaseSystem system(StoreLayout::RetailDemo(), config);
      consumer.system = &system;
      register_all(system, &consumer);
      for (size_t i = 0; i < 250; ++i) system.event_bus().OnEvent(trace[i]);
      ASSERT_TRUE(system.Checkpoint().ok());
      for (size_t i = 250; i < 500; ++i) system.event_bus().OnEvent(trace[i]);
      crashed_acked_runtime = system.acked_runtime();
      crashed_acked_serial = system.acked_serial();
      consumer.system = nullptr;
      // Crash without Flush: the pending ack batch (acked but not yet
      // committed — the ack-to-fsync window) dies here too.
    }

    // The durable cursor, read back the way recovery will: the snapshot's
    // ACKED line superseded by any ack-cursor records journaled after it.
    auto manifest = checkpoint::ReadManifest(dir);
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    auto snap = checkpoint::ReadSnapshot(dir, manifest.value(), nullptr);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    ASSERT_TRUE(snap.value().has_acked);
    uint64_t durable_runtime = snap.value().acked_runtime;
    uint64_t durable_serial = snap.value().acked_serial;
    auto scan = checkpoint::ReadJournal(dir, manifest.value());
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    for (const checkpoint::JournalRecord& record : scan.value().records) {
      if (record.kind == checkpoint::JournalRecord::Kind::kAckCursor) {
        durable_runtime = std::max(durable_runtime, record.acked_runtime);
        durable_serial = std::max(durable_serial, record.acked_serial);
      }
    }
    ASSERT_GT(durable_runtime + durable_serial, 0u);
    EXPECT_LE(durable_runtime, crashed_acked_runtime);
    EXPECT_LE(durable_serial, crashed_acked_serial);

    auto recovered = SaseSystem::Recover(
        dir, StoreLayout::RetailDemo(), config,
        [&](const std::string& name) { return callback(&consumer, name); });
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    // The recovery gate IS the durable cursor: nothing at or below it was
    // re-delivered, everything past it was (with its original stamp).
    EXPECT_FALSE(recovered.value()->recovered_ack_fallback());
    EXPECT_EQ(recovered.value()->acked_runtime(), durable_runtime);
    EXPECT_EQ(recovered.value()->acked_serial(), durable_serial);
    EXPECT_GT(consumer.duplicates, 0u)
        << "no re-deliveries: the crash window was empty";
    EXPECT_EQ(consumer.stamp_mismatches, 0u)
        << "a re-delivered record changed content or stamp";

    consumer.system = recovered.value().get();
    for (size_t i = 500; i < trace.size(); ++i) {
      recovered.value()->event_bus().OnEvent(trace[i]);
    }
    recovered.value()->Flush();
    EXPECT_EQ(golden.lines, consumer.lines)
        << "deduped output diverged at " << shards << " shards";
    EXPECT_EQ(consumer.stamp_mismatches, 0u);
  }
}

/// Satellite: a pre-cursor (v2) checkpoint has no ACKED line and its
/// journal no ack-cursor records. Recovery under ack_mode=consumer must
/// come up anyway — gated by the legacy delivered-output marks
/// (at-least-once across that one crash), flag the fallback, and name the
/// missing cursor in the operator-facing report.
TEST(SnapshotCompatTest, PreCursorCheckpointFallsBackToAtLeastOnce) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 600);
  auto regs = AllUpfront();
  auto golden = RunGolden(catalog, trace, regs);

  std::string dir = FreshDir("pre_cursor");
  // The crashed process ran the PRE-cursor code path: auto-ack mode writes
  // no ack-cursor records, so after the on-disk downgrade below the
  // directory is indistinguishable from one a v2-era build wrote.
  std::vector<std::string> lines;
  SystemConfig crashed_config = CheckpointedConfig(/*shards=*/2, dir);
  RunUntilCrash(trace, regs, crashed_config, /*checkpoint_at=*/300,
                /*crash_at=*/450, &lines);

  // Downgrade the snapshot: v2 header, no ACKED line, manifest format 2.
  std::string state_path = dir + "/snap-1/state.sase";
  ASSERT_TRUE(std::filesystem::exists(state_path));
  std::string state;
  {
    std::ifstream in(state_path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    state = buffer.str();
  }
  size_t header = state.find("SASE-CHECKPOINT v4");
  ASSERT_NE(header, std::string::npos);
  state.replace(header, 18, "SASE-CHECKPOINT v2");
  size_t acked = state.find("ACKED ");
  ASSERT_NE(acked, std::string::npos);
  state.erase(acked, state.find('\n', acked) - acked + 1);
  {
    std::ofstream out(state_path, std::ios::trunc);
    out << state;
  }
  {
    std::ofstream out(dir + "/MANIFEST", std::ios::trunc);
    out << "SASE-MANIFEST v1\nsnapshot 1\nformat 2\n";
  }

  SystemConfig config = CheckpointedConfig(/*shards=*/2, dir);
  config.checkpoint.ack_mode = checkpoint::AckMode::kConsumer;
  auto recovered = SaseSystem::Recover(dir, StoreLayout::RetailDemo(), config,
                                       Factory(&lines));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered.value()->recovered_ack_fallback());
  std::string report = recovered.value()->CheckpointReport();
  EXPECT_NE(report.find("missing acked cursor"), std::string::npos) << report;

  for (size_t i = 450; i < trace.size(); ++i) {
    recovered.value()->event_bus().OnEvent(trace[i]);
  }
  recovered.value()->Flush();
  // The fallback gate equals the legacy marks gate, so the combined output
  // is still byte-identical here (the at-least-once caveat is about acks
  // lost BETWEEN mark and cursor, which an auto-mode crash cannot create).
  EXPECT_EQ(golden, lines);
}

/// WAL group commit under FsyncPolicy::kAlways: with records-per-fsync set
/// well above one, a kill without Flush lands inside the batch-open ->
/// fsync window — the journal tail sits in the open commit group. A
/// process crash keeps the write(2)-n tail, so recovery must replay it;
/// byte-equality against the uninterrupted reference shows the open group
/// neither loses nor duplicates output across several crash offsets (each
/// a different open-group fill).
TEST(RecoveryGoldenTest, GroupCommitCrashWindowReplaysByteIdentical) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 600);
  auto regs = AllUpfront();
  auto golden = RunGolden(catalog, trace, regs);

  for (size_t crash_at : {260u, 395u, 511u}) {
    std::string dir = FreshDir("group_commit_" + std::to_string(crash_at));
    SystemConfig config = CheckpointedConfig(/*shards=*/2, dir);
    config.checkpoint.journal_fsync = checkpoint::FsyncPolicy::kAlways;
    config.checkpoint.group_commit_interval = 16;
    config.checkpoint.group_commit_max_delay_us = 0;  // count-closed only:
    // the open group at the kill is as full as the offset allows
    std::vector<std::string> lines;
    RunUntilCrash(trace, regs, config, /*checkpoint_at=*/128, crash_at,
                  &lines);
    RecoverAndFinish(trace, regs, config, crash_at, &lines);
    EXPECT_EQ(golden, lines) << "group-commit crash at " << crash_at;
  }
}

/// The acked-cursor exactly-once path with WAL group commit active: acks
/// ride the same journal whose fsyncs are now amortized, and CommitAcks
/// forces the group fsync so no cursor record is ever durable ahead of the
/// event records before it. A crash inside the window re-delivers
/// everything past the durable cursor with original stamps; the
/// stamp-deduped stream equals the uninterrupted reference.
TEST(ExactlyOnceTest, AckedCursorSurvivesGroupCommitCrashWindow) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 700);
  auto golden = RunGolden(catalog, trace, AllUpfront());

  struct Consumer {
    std::vector<std::string> deduped;
    std::map<std::pair<bool, uint64_t>, std::string> stamps;
    uint64_t duplicates = 0;
    uint64_t mismatches = 0;
    SaseSystem* system = nullptr;  // ack target; null during replay
  } consumer;
  auto callback = [&consumer](size_t q) -> OutputCallback {
    return [&consumer, q](const OutputRecord& record) {
      EXPECT_NE(record.cursor_position, 0u) << "unstamped delivery";
      std::string line = QueryName(q) + "|" + record.ToString();
      auto key = std::make_pair(record.cursor_runtime_hosted,
                                record.cursor_position);
      auto [it, fresh] = consumer.stamps.emplace(key, line);
      if (fresh) {
        consumer.deduped.push_back(line);
      } else {
        ++consumer.duplicates;
        if (it->second != line) ++consumer.mismatches;
      }
      if (consumer.system != nullptr && record.cursor_position % 2 == 0) {
        Status acked = consumer.system->AckOutput(record);
        EXPECT_TRUE(acked.ok()) << acked.ToString();
      }
    };
  };

  std::string dir = FreshDir("group_commit_ack");
  SystemConfig config = CheckpointedConfig(/*shards=*/2, dir);
  config.checkpoint.journal_fsync = checkpoint::FsyncPolicy::kAlways;
  config.checkpoint.group_commit_interval = 16;
  config.checkpoint.group_commit_max_delay_us = 0;
  config.checkpoint.ack_mode = checkpoint::AckMode::kConsumer;
  config.checkpoint.ack_commit_interval = 4;
  {
    SaseSystem system(StoreLayout::RetailDemo(), config);
    consumer.system = &system;
    for (size_t q = 0; q < kQueries.size(); ++q) {
      ASSERT_TRUE(system
                      .RegisterMonitoringQuery(QueryName(q), kQueries[q],
                                               callback(q))
                      .ok());
    }
    for (size_t i = 0; i < 250; ++i) system.event_bus().OnEvent(trace[i]);
    ASSERT_TRUE(system.Checkpoint().ok());
    for (size_t i = 250; i < 500; ++i) system.event_bus().OnEvent(trace[i]);
    consumer.system = nullptr;
    // Crash without Flush: unacked deliveries, the pending ack batch and
    // the open commit group all die here.
  }

  // The durable cursor as recovery will read it: the snapshot's ACKED line
  // superseded by ack-cursor records journaled after it.
  auto manifest = checkpoint::ReadManifest(dir);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  auto snap = checkpoint::ReadSnapshot(dir, manifest.value(), nullptr);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ASSERT_TRUE(snap.value().has_acked);
  uint64_t durable_runtime = snap.value().acked_runtime;
  uint64_t durable_serial = snap.value().acked_serial;
  auto scan = checkpoint::ReadJournal(dir, manifest.value());
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  for (const checkpoint::JournalRecord& record : scan.value().records) {
    if (record.kind == checkpoint::JournalRecord::Kind::kAckCursor) {
      durable_runtime = std::max(durable_runtime, record.acked_runtime);
      durable_serial = std::max(durable_serial, record.acked_serial);
    }
  }

  auto recovered = SaseSystem::Recover(
      dir, StoreLayout::RetailDemo(), config,
      [&](const std::string& name) -> OutputCallback {
        return callback(static_cast<size_t>(std::atoi(name.c_str() + 1)));
      });
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered.value()->recovered_ack_fallback());
  EXPECT_EQ(recovered.value()->acked_runtime(), durable_runtime);
  EXPECT_EQ(recovered.value()->acked_serial(), durable_serial);
  EXPECT_GT(consumer.duplicates, 0u)
      << "no re-deliveries: the crash window was empty";
  EXPECT_EQ(consumer.mismatches, 0u)
      << "a re-delivered record changed content or stamp";

  consumer.system = recovered.value().get();
  for (size_t i = 500; i < trace.size(); ++i) {
    recovered.value()->event_bus().OnEvent(trace[i]);
  }
  recovered.value()->Flush();
  EXPECT_EQ(golden, consumer.deduped) << "deduped output diverged";
  EXPECT_EQ(consumer.mismatches, 0u);
}

}  // namespace
}  // namespace sase
