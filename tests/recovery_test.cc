// End-to-end kill-and-recover tests for the durable checkpoint subsystem:
// a SaseSystem is checkpointed mid-stream, "crashed" (destroyed without a
// flush), recovered from disk, and driven to the end of the stream — the
// concatenation of the crashed process's output and the recovered
// process's output must be byte-identical to one uninterrupted serial run,
// including flush-released tail-negation deferrals, at 1 and 8 shards and
// across randomized crash offsets.

#include "system/sase_system.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "checkpoint/journal.h"
#include "db/dump.h"
#include "rfid/workload.h"

namespace sase {
namespace {

/// Mixed monitoring workload: key-partitioned middle and tail negation
/// (sharded, stateful, deferral-heavy), a stateless projection, and a
/// non-key pattern that lands on the broadcast worker — exercising the
/// checkpoint's broadcast-window retention. No running aggregates: those
/// refuse to checkpoint by design (tested separately).
const char* kQueries[] = {
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 120",
    "EVENT SEQ(SHELF_READING x, COUNTER_READING y, !(EXIT_READING z)) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 60 "
    "RETURN x.TagId, x.Timestamp AS shelf_ts, y.Timestamp AS counter_ts",
    "EVENT SHELF_READING s WHERE s.AreaId = 2 RETURN s.TagId, s.AreaId",
    "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
    "WHERE x.AreaId = z.AreaId WITHIN 40",
};

/// Register kQueries[query] as "q<query>" just before feeding the event at
/// `offset` (offset == trace size: register after the last event).
struct RegistrationPoint {
  size_t offset = 0;
  size_t query = 0;
};

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/sase_recovery_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<EventPtr> Trace(const Catalog& catalog, int64_t count) {
  SyntheticConfig config;
  config.seed = 7;
  config.event_count = count;
  config.tag_count = 40;
  config.area_count = 4;
  SyntheticStreamGenerator generator(&catalog, config);
  return generator.Generate();
}

std::string QueryName(size_t query) { return "q" + std::to_string(query); }

OutputCallback Collector(std::vector<std::string>* lines, size_t query) {
  return [lines, query](const OutputRecord& record) {
    lines->push_back(QueryName(query) + "|" + record.ToString());
  };
}

/// The uninterrupted reference: the same workload through one serial
/// QueryEngine, registrations interleaved at the same offsets.
std::vector<std::string> RunGolden(const Catalog& catalog,
                                   const std::vector<EventPtr>& trace,
                                   const std::vector<RegistrationPoint>& regs,
                                   bool flush = true) {
  std::vector<std::string> lines;
  QueryEngine engine(&catalog);
  for (size_t i = 0; i <= trace.size(); ++i) {
    for (const RegistrationPoint& reg : regs) {
      if (reg.offset != i) continue;
      auto id = engine.Register(kQueries[reg.query], Collector(&lines, reg.query));
      EXPECT_TRUE(id.ok()) << id.status().ToString();
    }
    if (i < trace.size()) engine.OnEvent(trace[i]);
  }
  if (flush) engine.OnFlush();
  return lines;
}

SystemConfig CheckpointedConfig(int shards, const std::string& dir,
                                size_t merge_interval = 64) {
  SystemConfig config;
  config.noise = NoiseModel::Perfect();
  config.shard_count = shards;
  config.runtime_merge_interval = merge_interval;
  config.checkpoint.dir = dir;
  return config;
}

SaseSystem::CallbackFactory Factory(std::vector<std::string>* lines) {
  return [lines](const std::string& name) -> OutputCallback {
    size_t query = static_cast<size_t>(std::atoi(name.c_str() + 1));
    return Collector(lines, query);
  };
}

constexpr size_t kNoCheckpoint = static_cast<size_t>(-1);

/// Drives the crashed process: registers per `regs`, checkpoints before
/// feeding the event at `checkpoint_at`, feeds events [0, crash_at) and
/// dies without flushing. Output is appended to `lines`.
void RunUntilCrash(const std::vector<EventPtr>& trace,
                   const std::vector<RegistrationPoint>& regs,
                   const SystemConfig& config, size_t checkpoint_at,
                   size_t crash_at, std::vector<std::string>* lines,
                   uint64_t* checkpoints_taken = nullptr) {
  SaseSystem system(StoreLayout::RetailDemo(), config);
  for (size_t i = 0; i < crash_at; ++i) {
    for (const RegistrationPoint& reg : regs) {
      if (reg.offset != i) continue;
      auto id = system.RegisterMonitoringQuery(QueryName(reg.query),
                                               kQueries[reg.query],
                                               Collector(lines, reg.query));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    if (i == checkpoint_at) {
      Status taken = system.Checkpoint();
      ASSERT_TRUE(taken.ok()) << taken.ToString();
    }
    system.event_bus().OnEvent(trace[i]);
  }
  if (checkpoints_taken != nullptr) *checkpoints_taken = system.checkpoints_taken();
  // Falling out of scope without Flush == the crash: nothing is persisted
  // beyond what the write-ahead journal and the last snapshot already hold.
}

/// Recovers from `dir` and drives the stream to the end (+flush).
void RecoverAndFinish(const std::vector<EventPtr>& trace,
                      const std::vector<RegistrationPoint>& regs,
                      const SystemConfig& config, size_t crash_at,
                      std::vector<std::string>* lines) {
  auto recovered = SaseSystem::Recover(config.checkpoint.dir,
                                       StoreLayout::RetailDemo(), config,
                                       Factory(lines));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  SaseSystem& system = *recovered.value();
  for (size_t i = crash_at; i <= trace.size(); ++i) {
    for (const RegistrationPoint& reg : regs) {
      if (reg.offset != i) continue;
      auto id = system.RegisterMonitoringQuery(QueryName(reg.query),
                                               kQueries[reg.query],
                                               Collector(lines, reg.query));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    if (i < trace.size()) system.event_bus().OnEvent(trace[i]);
  }
  system.Flush();
}

/// Whole kill-and-recover cycle; returns the concatenated output.
std::vector<std::string> CrashRecoverRun(
    const std::vector<EventPtr>& trace,
    const std::vector<RegistrationPoint>& regs, int shards,
    size_t checkpoint_at, size_t crash_at, const std::string& dir) {
  std::vector<std::string> lines;
  SystemConfig config = CheckpointedConfig(shards, dir);
  RunUntilCrash(trace, regs, config, checkpoint_at, crash_at, &lines);
  RecoverAndFinish(trace, regs, config, crash_at, &lines);
  return lines;
}

std::vector<RegistrationPoint> AllUpfront() {
  return {{0, 0}, {0, 1}, {0, 2}, {0, 3}};
}

TEST(RecoveryGoldenTest, KillAndRecoverByteIdenticalAtOneAndEightShards) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1200);
  auto regs = AllUpfront();
  auto golden = RunGolden(catalog, trace, regs);
  ASSERT_GT(golden.size(), 100u);  // non-trivial workload

  for (int shards : {1, 8}) {
    std::string dir = FreshDir("golden_" + std::to_string(shards));
    auto lines = CrashRecoverRun(trace, regs, shards, /*checkpoint_at=*/500,
                                 /*crash_at=*/900, dir);
    EXPECT_EQ(golden, lines) << "shards=" << shards;
  }
}

TEST(RecoveryGoldenTest, RandomizedCrashOffsetsStayByteIdentical) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1200);
  auto regs = AllUpfront();
  auto golden = RunGolden(catalog, trace, regs);

  // Crash offsets chosen to land mid-batch (not multiples of the runtime's
  // batch or merge cadence) and inside tail-negation windows; 501 crashes
  // one event after the checkpoint, 1199 one before the end.
  for (size_t crash_at : {501u, 537u, 640u, 811u, 1000u, 1199u}) {
    std::string dir = FreshDir("offset_" + std::to_string(crash_at));
    auto lines = CrashRecoverRun(trace, regs, /*shards=*/2,
                                 /*checkpoint_at=*/500, crash_at, dir);
    EXPECT_EQ(golden, lines) << "crash_at=" << crash_at;
  }

  // Journal-only recovery: the process dies before its first checkpoint —
  // the whole prefix replays from the write-ahead journal alone.
  for (size_t crash_at : {353u, 750u}) {
    std::string dir = FreshDir("journal_only_" + std::to_string(crash_at));
    auto lines = CrashRecoverRun(trace, regs, /*shards=*/2, kNoCheckpoint,
                                 crash_at, dir);
    EXPECT_EQ(golden, lines) << "journal-only crash_at=" << crash_at;
  }
}

TEST(RecoveryGoldenTest, MidJournalRegistrationIsReplayed) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1200);
  // q1 registers after the checkpoint (its registration only exists in the
  // journal), q3 after the crash (registered on the recovered system).
  std::vector<RegistrationPoint> regs = {{0, 0}, {650, 1}, {300, 2}, {950, 3}};
  auto golden = RunGolden(catalog, trace, regs);
  ASSERT_GT(golden.size(), 50u);

  std::string dir = FreshDir("midreg");
  auto lines = CrashRecoverRun(trace, regs, /*shards=*/2, /*checkpoint_at=*/500,
                               /*crash_at=*/900, dir);
  EXPECT_EQ(golden, lines);
}

TEST(RecoveryGoldenTest, AutomaticCheckpointPolicyCoversTheCrash) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1200);
  auto regs = AllUpfront();
  auto golden = RunGolden(catalog, trace, regs);

  std::string dir = FreshDir("auto_policy");
  SystemConfig config = CheckpointedConfig(/*shards=*/2, dir);
  config.checkpoint.checkpoint_interval_events = 200;
  std::vector<std::string> lines;
  uint64_t taken = 0;
  RunUntilCrash(trace, regs, config, kNoCheckpoint, /*crash_at=*/730, &lines,
                &taken);
  EXPECT_GE(taken, 3u);  // the policy checkpointed on its own
  RecoverAndFinish(trace, regs, config, /*crash_at=*/730, &lines);
  EXPECT_EQ(golden, lines);
}

TEST(RecoveryGoldenTest, CorruptJournalTailRecoversTheValidPrefix) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1200);
  auto regs = AllUpfront();
  // Reference without end-of-stream flush: the truncated run never reaches
  // a flush, so the comparable property is prefix equality.
  auto golden_noflush = RunGolden(catalog, trace, regs, /*flush=*/false);

  std::string dir = FreshDir("corrupt_tail");
  SystemConfig config = CheckpointedConfig(/*shards=*/2, dir);
  std::vector<std::string> lines;
  RunUntilCrash(trace, regs, config, /*checkpoint_at=*/500, /*crash_at=*/900,
                &lines);
  size_t crashed_lines = lines.size();

  // Tear the live journal segment mid-record, as a crash during an append
  // would. Epoch 1 = the journal opened by the checkpoint at offset 500.
  std::string segment = dir + "/" + checkpoint::SegmentFileName(1, 0);
  ASSERT_TRUE(std::filesystem::exists(segment));
  auto size = std::filesystem::file_size(segment);
  std::filesystem::resize_file(segment, size - 7);

  std::vector<std::string> recovered_lines;
  auto recovered = SaseSystem::Recover(dir, StoreLayout::RetailDemo(), config,
                                       Factory(&recovered_lines));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered.value()->recovered_journal_truncated());
  EXPECT_GT(recovered.value()->recovered_journal_records(), 0u);

  // Recovery stopped cleanly at the last valid record: the combined output
  // is byte-identical to a prefix of the uninterrupted run — no duplicates,
  // no gaps, no garbage from the torn tail.
  lines.insert(lines.end(), recovered_lines.begin(), recovered_lines.end());
  ASSERT_GE(lines.size(), crashed_lines);
  ASSERT_LE(lines.size(), golden_noflush.size());
  EXPECT_TRUE(std::equal(lines.begin(), lines.end(), golden_noflush.begin()))
      << "combined output is not a golden prefix";

  // Chained crash: the first recovery must have cut the torn tail out of
  // the segment, or this second scan would stop at the OLD crash point and
  // silently drop everything journaled since. Feed more events on the
  // recovered system, crash again without a checkpoint in between, recover
  // again: the second scan must be clean and cover the new events.
  uint64_t first_replay = recovered.value()->recovered_journal_records();
  constexpr size_t kMoreEvents = 200;
  for (size_t i = 900; i < 900 + kMoreEvents; ++i) {
    recovered.value()->event_bus().OnEvent(trace[i]);
  }
  recovered.value().reset();  // second crash, un-flushed

  std::vector<std::string> second_lines;
  auto second = SaseSystem::Recover(dir, StoreLayout::RetailDemo(), config,
                                    Factory(&second_lines));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(second.value()->recovered_journal_truncated());
  EXPECT_GE(second.value()->recovered_journal_records(),
            first_replay + kMoreEvents);
}

TEST(RecoveryGoldenTest, EventDatabaseRecoversExactly) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 1000);
  constexpr const char* kLocationRule =
      "EVENT ANY(SHELF_READING s) "
      "RETURN _updateLocation(s.TagId, s.AreaId, s.Timestamp)";

  // Uninterrupted reference run (checkpointing off; archiving rules always
  // execute on the serial engine, so hosting differences cannot leak in).
  std::string golden_dump;
  {
    SystemConfig config;
    config.noise = NoiseModel::Perfect();
    config.shard_count = 2;
    SaseSystem system(StoreLayout::RetailDemo(), config);
    ASSERT_TRUE(system.RegisterArchivingRule("loc", kLocationRule).ok());
    for (const auto& event : trace) system.event_bus().OnEvent(event);
    system.Flush();
    std::ostringstream out;
    ASSERT_TRUE(db::Dump(system.database(), &out).ok());
    golden_dump = out.str();
  }

  std::string dir = FreshDir("database");
  SystemConfig config = CheckpointedConfig(/*shards=*/2, dir);
  {
    SaseSystem system(StoreLayout::RetailDemo(), config);
    ASSERT_TRUE(system.RegisterArchivingRule("loc", kLocationRule).ok());
    for (size_t i = 0; i < 800; ++i) {
      if (i == 400) ASSERT_TRUE(system.Checkpoint().ok());
      system.event_bus().OnEvent(trace[i]);
    }
  }
  auto recovered = SaseSystem::Recover(dir, StoreLayout::RetailDemo(), config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  for (size_t i = 800; i < trace.size(); ++i) {
    recovered.value()->event_bus().OnEvent(trace[i]);
  }
  recovered.value()->Flush();

  std::ostringstream out;
  ASSERT_TRUE(db::Dump(recovered.value()->database(), &out).ok());
  EXPECT_EQ(golden_dump, out.str());

  // The restored Event Database also answers track-and-trace queries.
  auto locations = recovered.value()->ExecuteSql(
      "SELECT * FROM location_history LIMIT 5");
  EXPECT_TRUE(locations.ok()) << locations.status().ToString();
}

TEST(RecoveryPreconditionTest, CheckpointDuringResizeIsRefused) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = Trace(catalog, 400);
  std::string dir = FreshDir("during_resize");
  // merge_interval 0: no incremental merges, so records are still pending
  // when Resize quiesces — its delivery callbacks run mid-resize.
  SystemConfig config = CheckpointedConfig(/*shards=*/2, dir,
                                           /*merge_interval=*/0);
  SaseSystem system(StoreLayout::RetailDemo(), config);

  std::vector<Status> during_resize;
  auto id = system.RegisterMonitoringQuery(
      "q0", kQueries[0], [&](const OutputRecord&) {
        if (system.runtime()->resizing() && during_resize.empty()) {
          during_resize.push_back(system.Checkpoint());
        }
      });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  for (const auto& event : trace) system.event_bus().OnEvent(event);

  Status resized = system.runtime()->Resize(4);
  ASSERT_TRUE(resized.ok()) << resized.ToString();
  ASSERT_FALSE(during_resize.empty())
      << "no records were delivered at the resize quiesce point";
  EXPECT_EQ(during_resize.front().code(), StatusCode::kFailedPrecondition)
      << during_resize.front().ToString();

  // After the resize completes, the same checkpoint succeeds.
  EXPECT_TRUE(system.Checkpoint().ok());
}

TEST(RecoveryPreconditionTest, NonWindowReplayableQueriesRefuseCheckpoint) {
  {
    // Stateful pattern with no WITHIN bound: the replay window would be the
    // whole stream.
    std::string dir = FreshDir("unbounded");
    SaseSystem system(StoreLayout::RetailDemo(),
                      CheckpointedConfig(/*shards=*/2, dir));
    ASSERT_TRUE(system
                    .RegisterMonitoringQuery(
                        "unbounded",
                        "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
                        "WHERE x.TagId = z.TagId")
                    .ok());
    Status refused = system.Checkpoint();
    EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition)
        << refused.ToString();
  }
  {
    // Running aggregate: its fold state is not window-replayable.
    std::string dir = FreshDir("aggregate");
    SaseSystem system(StoreLayout::RetailDemo(),
                      CheckpointedConfig(/*shards=*/2, dir));
    ASSERT_TRUE(system
                    .RegisterMonitoringQuery(
                        "exits", "EVENT EXIT_READING e RETURN COUNT(*) AS exits")
                    .ok());
    Status refused = system.Checkpoint();
    EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition)
        << refused.ToString();
  }
}

}  // namespace
}  // namespace sase
