// Direct tests of the brute-force oracle itself: since the property tests
// assert engine == reference, the reference's own semantics must be pinned
// down independently here on hand-checked streams.

#include "engine/reference_matcher.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sase {
namespace {

using testing::MustAnalyze;
using testing::StreamBuilder;

class ReferenceMatcherTest : public ::testing::Test {
 protected:
  std::vector<Match> Run(const std::string& query,
                         const std::vector<EventPtr>& events) {
    AnalyzedQuery analyzed = MustAnalyze(catalog_, query);
    FunctionRegistry functions;
    functions.RegisterCommon();
    ReferenceMatcher reference(&analyzed, &functions);
    auto matches = reference.FindMatches(events);
    EXPECT_TRUE(matches.ok()) << matches.status().ToString();
    return std::move(matches).value();
  }

  Catalog catalog_ = Catalog::RetailDemo();
};

TEST_F(ReferenceMatcherTest, EnumeratesAllOrderedCombinations) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A")
        .Add("SHELF_READING", 2, "B")
        .Add("EXIT_READING", 3, "C")
        .Add("EXIT_READING", 4, "D");
  auto matches = Run("EVENT SEQ(SHELF_READING x, EXIT_READING z)",
                     stream.events());
  EXPECT_EQ(matches.size(), 4u);
  // Lexicographic enumeration order: by x position, then z position.
  EXPECT_EQ(matches[0].bindings[0]->seq(), 0u);
  EXPECT_EQ(matches[0].bindings[1]->seq(), 2u);
  EXPECT_EQ(matches[3].bindings[0]->seq(), 1u);
  EXPECT_EQ(matches[3].bindings[1]->seq(), 3u);
}

TEST_F(ReferenceMatcherTest, StrictTimestampOrdering) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 5, "A").Add("EXIT_READING", 5, "B");
  EXPECT_TRUE(Run("EVENT SEQ(SHELF_READING x, EXIT_READING z)",
                  stream.events()).empty());
}

TEST_F(ReferenceMatcherTest, WindowInclusiveBound) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 0, "A").Add("EXIT_READING", 10, "A");
  EXPECT_EQ(Run("EVENT SEQ(SHELF_READING x, EXIT_READING z) WITHIN 10",
                stream.events()).size(), 1u);
  EXPECT_TRUE(Run("EVENT SEQ(SHELF_READING x, EXIT_READING z) WITHIN 9",
                  stream.events()).empty());
}

TEST_F(ReferenceMatcherTest, PredicatesFromOriginalWhereTree) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A", 1)
        .Add("SHELF_READING", 2, "A", 2)
        .Add("EXIT_READING", 3, "A", 2);
  // Disjunction stays one conjunct — the oracle evaluates it whole.
  auto matches = Run(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.AreaId = 1 OR x.AreaId = 3",
      stream.events());
  EXPECT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].bindings[0]->attribute(1).AsInt(), 1);
}

TEST_F(ReferenceMatcherTest, MiddleNegationStrictInterval) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "T")
        .Add("COUNTER_READING", 3, "T")
        .Add("EXIT_READING", 5, "T");
  EXPECT_TRUE(Run(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100",
      stream.events()).empty());

  // Counter at the boundary timestamps does not violate.
  StreamBuilder boundary(&catalog_);
  boundary.Add("SHELF_READING", 1, "T")
          .Add("COUNTER_READING", 1, "T")
          .Add("COUNTER_READING", 5, "T")
          .Add("EXIT_READING", 5, "T");
  EXPECT_EQ(Run(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100",
      boundary.events()).size(), 1u);
}

TEST_F(ReferenceMatcherTest, TailNegationWindowBoundIsInclusive) {
  // Interval for SEQ(S x, !(C y)) WITHIN 10 is (x.ts, x.ts + 10].
  StreamBuilder at_bound(&catalog_);
  at_bound.Add("SHELF_READING", 0, "T").Add("COUNTER_READING", 10, "T");
  EXPECT_TRUE(Run(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 10",
      at_bound.events()).empty());

  StreamBuilder past_bound(&catalog_);
  past_bound.Add("SHELF_READING", 0, "T").Add("COUNTER_READING", 11, "T");
  EXPECT_EQ(Run(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 10",
      past_bound.events()).size(), 1u);
}

TEST_F(ReferenceMatcherTest, HeadNegationWindowBoundIsInclusive) {
  // Interval for SEQ(!(C y), E z) WITHIN 10 is [z.ts - 10, z.ts).
  StreamBuilder at_bound(&catalog_);
  at_bound.Add("COUNTER_READING", 0, "T").Add("EXIT_READING", 10, "T");
  EXPECT_TRUE(Run(
      "EVENT SEQ(!(COUNTER_READING y), EXIT_READING z) "
      "WHERE y.TagId = z.TagId WITHIN 10",
      at_bound.events()).empty());

  StreamBuilder before_bound(&catalog_);
  before_bound.Add("COUNTER_READING", 0, "T").Add("EXIT_READING", 11, "T");
  EXPECT_EQ(Run(
      "EVENT SEQ(!(COUNTER_READING y), EXIT_READING z) "
      "WHERE y.TagId = z.TagId WITHIN 10",
      before_bound.events()).size(), 1u);
}

TEST_F(ReferenceMatcherTest, MatchCarriesTimestampsAndKey) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 3, "A").Add("EXIT_READING", 9, "A");
  auto matches = Run("EVENT SEQ(SHELF_READING x, EXIT_READING z)",
                     stream.events());
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].first_ts, 3);
  EXPECT_EQ(matches[0].last_ts, 9);
  EXPECT_EQ(matches[0].Key(), (std::vector<SequenceNumber>{0, 1}));
  EXPECT_NE(matches[0].ToString(catalog_).find("SHELF_READING@3"),
            std::string::npos);
}

TEST_F(ReferenceMatcherTest, StrictEvaluationSurfacesErrors) {
  // The oracle is strict: an eval error aborts instead of dropping the
  // match (unlike the lenient engine).
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A").Add("EXIT_READING", 2, "A");
  AnalyzedQuery analyzed = MustAnalyze(
      catalog_,
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE _nosuch(x.TagId) = 'y'");
  FunctionRegistry functions;  // _nosuch not registered
  ReferenceMatcher reference(&analyzed, &functions);
  auto matches = reference.FindMatches(stream.events());
  EXPECT_FALSE(matches.ok());
}

}  // namespace
}  // namespace sase
