#include "system/report.h"

#include <gtest/gtest.h>

#include "engine/match.h"

namespace sase {
namespace {

TEST(ReportChannelTest, AppendAndQuery) {
  ReportChannel channel("Message Results");
  EXPECT_EQ(channel.size(), 0u);
  channel.Append("theft detected: TAG-A");
  channel.Append("theft detected: TAG-B");
  EXPECT_EQ(channel.size(), 2u);
  EXPECT_EQ(channel.name(), "Message Results");
  EXPECT_TRUE(channel.Contains("TAG-A"));
  EXPECT_TRUE(channel.Contains("theft"));
  EXPECT_FALSE(channel.Contains("TAG-C"));
}

TEST(ReportChannelTest, ToStringRendersHeaderAndLines) {
  ReportChannel channel("Database Report");
  channel.Append("> SELECT 1");
  std::string text = channel.ToString();
  EXPECT_NE(text.find("=== Database Report ==="), std::string::npos);
  EXPECT_NE(text.find("> SELECT 1"), std::string::npos);
}

TEST(ReportChannelTest, ClearEmpties) {
  ReportChannel channel("x");
  channel.Append("line");
  channel.Clear();
  EXPECT_EQ(channel.size(), 0u);
  EXPECT_FALSE(channel.Contains("line"));
}

TEST(ReportBoardTest, ChannelsCreatedOnFirstUse) {
  ReportBoard board;
  EXPECT_EQ(board.Find("anything"), nullptr);
  board.Channel("anything").Append("hello");
  ASSERT_NE(board.Find("anything"), nullptr);
  EXPECT_TRUE(board.Find("anything")->Contains("hello"));
  // Same name returns the same channel.
  board.Channel("anything").Append("again");
  EXPECT_EQ(board.Find("anything")->size(), 2u);
}

TEST(ReportBoardTest, StandardWindowNames) {
  // The Figure-3 window names are stable constants the system layer and
  // tests rely on.
  EXPECT_STREQ(ReportBoard::kPresentQueries, "Present Queries");
  EXPECT_STREQ(ReportBoard::kCleaningOutput,
               "Cleaning and Association Layer Output");
  EXPECT_STREQ(ReportBoard::kDatabaseReport, "Database Report");
  EXPECT_STREQ(ReportBoard::kStreamOutput, "Stream Processor Output");
  EXPECT_STREQ(ReportBoard::kMessageResults, "Message Results");
}

TEST(ReportBoardTest, ChannelNamesSorted) {
  ReportBoard board;
  board.Channel("zeta");
  board.Channel("alpha");
  auto names = board.ChannelNames();
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(OutputRecordTest, GetIsCaseInsensitiveAndNullSafe) {
  OutputRecord record;
  record.names = {"TagId", "AreaId"};
  record.values = {Value("T"), Value(3)};
  EXPECT_EQ(record.Get("tagid").AsString(), "T");
  EXPECT_EQ(record.Get("AREAID").AsInt(), 3);
  EXPECT_TRUE(record.Get("missing").is_null());
}

TEST(OutputRecordTest, ToStringDefaultsStreamName) {
  OutputRecord record;
  record.timestamp = 9;
  record.names = {"A"};
  record.values = {Value(1)};
  EXPECT_EQ(record.ToString(), "out@9{A=1}");
  record.stream = "alerts";
  EXPECT_EQ(record.ToString(), "alerts@9{A=1}");
}

TEST(MatchKeyTest, NegatedSlotsUseSentinel) {
  Match match;
  match.bindings.resize(3);  // all null (as for a pattern of negated slots)
  auto key = match.Key();
  ASSERT_EQ(key.size(), 3u);
  for (auto part : key) {
    EXPECT_EQ(part, static_cast<SequenceNumber>(-1));
  }
}

}  // namespace
}  // namespace sase
