#include <gtest/gtest.h>

#include <cctype>

#include "rfid/reader.h"
#include "rfid/simulator.h"
#include "rfid/store_layout.h"
#include "rfid/tag.h"

namespace sase {
namespace {

/// Collects readings from the simulator.
class ReadingCollector : public ReadingSink {
 public:
  void OnReading(const RawReading& reading) override {
    readings.push_back(reading);
  }
  std::vector<RawReading> readings;
};

TEST(TagTest, MakeEpcIsWellFormedAndUnique) {
  std::string a = MakeEpc(1), b = MakeEpc(2);
  EXPECT_EQ(a.size(), kEpcLength);
  EXPECT_NE(a, b);
  for (char c : a) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)));
  }
  EXPECT_EQ(MakeEpc(1), MakeEpc(1));  // deterministic
}

TEST(StoreLayoutTest, RetailDemoMatchesFigure2) {
  StoreLayout layout = StoreLayout::RetailDemo();
  // "four readers (antennas), with one reader in each of the following
  // locations: the store exit, two shelves, and check-out counter."
  EXPECT_EQ(layout.readers().size(), 4u);
  EXPECT_EQ(layout.areas().size(), 4u);
  EXPECT_EQ(layout.AreasByKind(AreaKind::kShelf).size(), 2u);
  EXPECT_NE(layout.FindAreaByKind(AreaKind::kCounter), -1);
  EXPECT_NE(layout.FindAreaByKind(AreaKind::kExit), -1);
  EXPECT_EQ(layout.FindAreaByKind(AreaKind::kBackroom), -1);
  // Each reader watches exactly one logical area.
  auto mapping = layout.ReaderToArea();
  EXPECT_EQ(mapping.size(), 4u);
  auto types = layout.AreaToEventType();
  EXPECT_EQ(types.at(layout.FindAreaByKind(AreaKind::kExit)), "EXIT_READING");
  EXPECT_EQ(types.at(layout.FindAreaByKind(AreaKind::kCounter)),
            "COUNTER_READING");
}

TEST(ReaderTest, PerfectReaderReadsEveryTag) {
  Reader reader(ReaderSpec{0, 0}, NoiseModel::Perfect());
  TagInfo tag{MakeEpc(1), "Soap", "", true};
  std::vector<const TagInfo*> present = {&tag};
  Random rng(1);
  std::vector<RawReading> out;
  for (int i = 0; i < 100; ++i) reader.Scan(i, present, &rng, &out);
  ASSERT_EQ(out.size(), 100u);
  for (const auto& reading : out) {
    EXPECT_EQ(reading.tag_id, tag.epc);
    EXPECT_EQ(reading.reader_id, 0);
  }
}

TEST(ReaderTest, MissRateDropsReadings) {
  Reader reader(ReaderSpec{0, 0}, NoiseModel{.miss_rate = 0.5,
                                             .truncation_rate = 0,
                                             .spurious_rate = 0,
                                             .duplicate_rate = 0});
  TagInfo tag{MakeEpc(1), "Soap", "", true};
  std::vector<const TagInfo*> present = {&tag};
  Random rng(42);
  std::vector<RawReading> out;
  for (int i = 0; i < 1000; ++i) reader.Scan(i, present, &rng, &out);
  EXPECT_GT(out.size(), 300u);
  EXPECT_LT(out.size(), 700u);
}

TEST(ReaderTest, NoiseProducesAnomalies) {
  Reader reader(ReaderSpec{0, 0}, NoiseModel{.miss_rate = 0,
                                             .truncation_rate = 0.5,
                                             .spurious_rate = 0.5,
                                             .duplicate_rate = 0.5});
  TagInfo tag{MakeEpc(1), "Soap", "", true};
  std::vector<const TagInfo*> present = {&tag};
  Random rng(42);
  std::vector<RawReading> out;
  for (int i = 0; i < 200; ++i) reader.Scan(i, present, &rng, &out);
  int truncated = 0, spurious = 0;
  for (const auto& reading : out) {
    if (reading.tag_id.size() < kEpcLength) ++truncated;
    if (reading.tag_id[0] == 'Z') ++spurious;
  }
  EXPECT_GT(truncated, 0);
  EXPECT_GT(spurious, 0);
  EXPECT_GT(out.size(), 200u);  // duplicates + spurious exceed one per scan
}

TEST(SimulatorTest, ScansItemsInPlace) {
  StoreLayout layout = StoreLayout::RetailDemo();
  RetailSimulator sim(layout, NoiseModel::Perfect(), 1, /*raw_units_per_tick=*/1);
  ReadingCollector collector;
  sim.set_sink(&collector);
  sim.AddItem(TagInfo{MakeEpc(1), "Soap", "", true});
  sim.Place(MakeEpc(1), 0);  // shelf 1
  sim.Step();
  ASSERT_EQ(collector.readings.size(), 1u);
  EXPECT_EQ(collector.readings[0].reader_id, 0);
  EXPECT_EQ(collector.readings[0].tag_id, MakeEpc(1));
  EXPECT_EQ(sim.now(), 1);
}

TEST(SimulatorTest, ItemsNotPlacedAreNotRead) {
  StoreLayout layout = StoreLayout::RetailDemo();
  RetailSimulator sim(layout, NoiseModel::Perfect(), 1, 1);
  ReadingCollector collector;
  sim.set_sink(&collector);
  sim.AddItem(TagInfo{MakeEpc(1), "Soap", "", true});
  sim.Step();
  EXPECT_TRUE(collector.readings.empty());
  EXPECT_EQ(sim.ItemArea(MakeEpc(1)), -1);
}

TEST(SimulatorTest, ScheduledActionsApplyAtTheirTick) {
  StoreLayout layout = StoreLayout::RetailDemo();
  RetailSimulator sim(layout, NoiseModel::Perfect(), 1, 1);
  ReadingCollector collector;
  sim.set_sink(&collector);
  sim.AddItem(TagInfo{MakeEpc(1), "Soap", "", true});
  sim.Schedule(2, ActionKind::kPlace, MakeEpc(1), 0);
  sim.Schedule(4, ActionKind::kMove, MakeEpc(1), 3);
  sim.Schedule(6, ActionKind::kRemove, MakeEpc(1));
  sim.RunUntil(8);
  // Read on shelf (area 0 / reader 0) at ticks 2,3; at exit (area 3 /
  // reader 3) at ticks 4,5; gone afterwards.
  int shelf = 0, exit = 0;
  for (const auto& reading : collector.readings) {
    if (reading.reader_id == 0) ++shelf;
    if (reading.reader_id == 3) ++exit;
  }
  EXPECT_EQ(shelf, 2);
  EXPECT_EQ(exit, 2);
  EXPECT_EQ(sim.ItemArea(MakeEpc(1)), -1);
}

TEST(SimulatorTest, RawTimeUsesConfiguredUnits) {
  StoreLayout layout = StoreLayout::RetailDemo();
  RetailSimulator sim(layout, NoiseModel::Perfect(), 1, /*raw_units_per_tick=*/1000);
  ReadingCollector collector;
  sim.set_sink(&collector);
  sim.AddItem(TagInfo{MakeEpc(1), "Soap", "", true});
  sim.Place(MakeEpc(1), 0);
  sim.Step();
  sim.Step();
  ASSERT_EQ(collector.readings.size(), 2u);
  EXPECT_EQ(collector.readings[0].raw_time, 0);
  EXPECT_EQ(collector.readings[1].raw_time, 1000);
}

TEST(SimulatorTest, DeterministicUnderSeed) {
  auto run = [](uint64_t seed) {
    StoreLayout layout = StoreLayout::RetailDemo();
    RetailSimulator sim(layout, NoiseModel{}, seed, 1);
    ReadingCollector collector;
    sim.set_sink(&collector);
    for (int i = 0; i < 10; ++i) {
      sim.AddItem(TagInfo{MakeEpc(i), "P", "", true});
      sim.Place(MakeEpc(i), i % 4);
    }
    sim.RunUntil(50);
    return collector.readings.size();
  };
  EXPECT_EQ(run(7), run(7));
  // Different seeds almost surely diverge under 5% miss rate.
  EXPECT_NE(run(7), run(8));
}

}  // namespace
}  // namespace sase
