#include "runtime/sharded_runtime.h"

#include <gtest/gtest.h>

#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "engine/query_engine.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "rfid/workload.h"
#include "runtime/event_batch.h"
#include "runtime/output_merger.h"
#include "runtime/partitioner.h"

namespace sase {
namespace {

// --- SPSC ring -------------------------------------------------------------

TEST(SpscRingTest, OrderedTransferAcrossThreads) {
  SpscRing<int> ring(8);
  constexpr int kItems = 10000;
  std::vector<int> received;
  std::thread consumer([&] {
    int item = 0;
    while (ring.Pop(&item)) received.push_back(item);
  });
  for (int i = 0; i < kItems; ++i) ring.Push(int(i));
  ring.Close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(SpscRingTest, TryPushFailsWhenFullAndCloseDrains) {
  SpscRing<int> ring(2);  // capacity rounds to 2
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_FALSE(ring.TryPush(3));
  ring.Close();
  int out = 0;
  EXPECT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.Pop(&out));  // closed and drained
}

// --- Partitioner classification --------------------------------------------

class PartitionerTest : public ::testing::Test {
 protected:
  AnalyzedQuery Analyze(const std::string& text) {
    auto parsed = Parser::Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    Analyzer analyzer(&catalog_, TimeConfig{});
    auto analyzed = analyzer.Analyze(std::move(parsed).value());
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    return std::move(analyzed).value();
  }

  bool Shardable(const std::string& text, PlanOptions options = {}) {
    return Partitioner::Shardable(Analyze(text), catalog_, "TagId", options);
  }

  Catalog catalog_ = Catalog::RetailDemo();
};

TEST_F(PartitionerTest, TagEquivalenceSequenceIsShardable) {
  EXPECT_TRUE(Shardable(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100"));
}

TEST_F(PartitionerTest, StatelessSingleEventQueryIsShardable) {
  EXPECT_TRUE(Shardable(
      "EVENT SHELF_READING s WHERE s.AreaId = 2 RETURN s.TagId"));
}

TEST_F(PartitionerTest, AggregateQueryIsNotShardable) {
  EXPECT_FALSE(Shardable("EVENT EXIT_READING e RETURN COUNT(*)"));
}

TEST_F(PartitionerTest, NonKeyEquivalenceIsNotShardable) {
  EXPECT_FALSE(Shardable(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.AreaId = z.AreaId WITHIN 50"));
}

TEST_F(PartitionerTest, UnpartitionedNegationIsNotShardable) {
  // The negated component does not join the TagId equivalence class: any
  // counter reading suppresses, so every shard would need every event.
  EXPECT_FALSE(Shardable(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 100"));
}

TEST_F(PartitionerTest, DisabledPartitioningIsNotShardable) {
  PlanOptions options;
  options.use_partitioning = false;
  EXPECT_FALSE(Shardable(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100",
      options));
}

TEST_F(PartitionerTest, FromStreamQueryShardsLikeDefaultInput) {
  // Stream-aware classification: the input stream is irrelevant to
  // shardability — the same pattern shards whether it reads the default
  // input or a named FROM stream.
  EXPECT_TRUE(Shardable(
      "FROM sensors "
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100"));
  EXPECT_TRUE(Shardable("FROM sensors EVENT SHELF_READING s RETURN s.TagId"));
  EXPECT_FALSE(Shardable("FROM sensors EVENT EXIT_READING e RETURN COUNT(*)"));
}

TEST_F(PartitionerTest, RouteKeepsPerStreamDispatchStamps) {
  Partitioner partitioner(&catalog_, "TagId", 2);
  StreamId def = partitioner.InternStream("");
  StreamId sensors = partitioner.InternStream("sensors");
  EXPECT_EQ(def, kDefaultStream);
  EXPECT_EQ(partitioner.InternStream("sensors"), sensors);  // stable

  EventBuilder b(catalog_, "SHELF_READING");
  auto event = b.Set("TagId", "TAG0").Set("AreaId", 1).Build(10, 0);
  ASSERT_TRUE(event.ok());
  int shard = partitioner.Route(sensors, *event.value());
  ASSERT_GE(shard, 0);
  ASSERT_LT(shard, 2);

  const auto& streams = partitioner.streams();
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[def].events, 0u);
  EXPECT_EQ(streams[sensors].name, "sensors");
  EXPECT_EQ(streams[sensors].events, 1u);
  EXPECT_EQ(streams[sensors].clock, 10);
  EXPECT_EQ(streams[sensors].per_shard[static_cast<size_t>(shard)], 1u);
}

TEST_F(PartitionerTest, RoutingIsDeterministicAndKeyStable) {
  Partitioner partitioner(&catalog_, "TagId", 4);
  SyntheticConfig config;
  config.seed = 11;
  config.event_count = 500;
  config.tag_count = 20;
  SyntheticStreamGenerator generator(&catalog_, config);
  auto events = generator.Generate();
  ASSERT_FALSE(events.empty());
  // Same tag -> same shard, regardless of event type.
  std::map<std::string, int> shard_of_tag;
  for (const auto& event : events) {
    const EventSchema& schema = catalog_.schema(event->type());
    AttrIndex tag = schema.FindAttribute("TagId");
    ASSERT_GE(tag, 0);
    int shard = partitioner.ShardFor(*event);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    std::string key = event->attribute(tag).ToString();
    auto [it, inserted] = shard_of_tag.emplace(key, shard);
    if (!inserted) EXPECT_EQ(it->second, shard) << "tag " << key;
  }
  EXPECT_GT(shard_of_tag.size(), 1u);
}

// --- Golden determinism -----------------------------------------------------

/// The mixed continuous-query workload of the golden test: key-partitioned
/// patterns (middle and tail negation), a stateless projection, a running
/// aggregate (broadcast), and a non-key pattern (broadcast).
const char* kGoldenQueries[] = {
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 120",
    "EVENT SEQ(SHELF_READING x, COUNTER_READING y, !(EXIT_READING z)) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 60 "
    "RETURN x.TagId, x.Timestamp AS shelf_ts, y.Timestamp AS counter_ts",
    "EVENT SHELF_READING s WHERE s.AreaId = 2 RETURN s.TagId, s.AreaId",
    "EVENT EXIT_READING e RETURN COUNT(*) AS exits",
    "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
    "WHERE x.AreaId = z.AreaId WITHIN 40",
};

std::vector<EventPtr> GoldenTrace(const Catalog& catalog) {
  SyntheticConfig config;
  config.seed = 7;
  config.event_count = 4000;
  config.tag_count = 60;
  config.area_count = 4;
  SyntheticStreamGenerator generator(&catalog, config);
  return generator.Generate();
}

/// Runs the golden workload through a serial QueryEngine; output lines are
/// "q<index>|<record>" in emission order.
std::vector<std::string> RunSerial(const Catalog& catalog,
                                   const std::vector<EventPtr>& trace) {
  std::vector<std::string> lines;
  QueryEngine engine(&catalog);
  for (size_t q = 0; q < std::size(kGoldenQueries); ++q) {
    auto id = engine.Register(kGoldenQueries[q],
                              [&lines, q](const OutputRecord& record) {
                                lines.push_back("q" + std::to_string(q) + "|" +
                                                record.ToString());
                              });
    EXPECT_TRUE(id.ok()) << id.status().ToString();
  }
  for (const auto& event : trace) engine.OnEvent(event);
  engine.OnFlush();
  return lines;
}

std::vector<std::string> RunSharded(const Catalog& catalog,
                                    const std::vector<EventPtr>& trace,
                                    int shards, size_t merge_interval) {
  std::vector<std::string> lines;
  RuntimeConfig config;
  config.shard_count = shards;
  config.merge_interval = merge_interval;
  config.batch_size = 64;
  ShardedRuntime runtime(&catalog, config);
  for (size_t q = 0; q < std::size(kGoldenQueries); ++q) {
    auto id = runtime.Register(kGoldenQueries[q],
                               [&lines, q](const OutputRecord& record) {
                                 lines.push_back("q" + std::to_string(q) + "|" +
                                                 record.ToString());
                               });
    EXPECT_TRUE(id.ok()) << id.status().ToString();
  }
  // The pattern queries shard; aggregate and non-key pattern do not.
  EXPECT_TRUE(runtime.IsSharded(1));
  EXPECT_TRUE(runtime.IsSharded(2));
  EXPECT_TRUE(runtime.IsSharded(3));
  EXPECT_FALSE(runtime.IsSharded(4));
  EXPECT_FALSE(runtime.IsSharded(5));
  for (const auto& event : trace) runtime.OnEvent(event);
  runtime.OnFlush();
  return lines;
}

TEST(ShardedRuntimeGoldenTest, ByteIdenticalToSerialAcrossShardCounts) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);
  auto serial = RunSerial(catalog, trace);
  // The workload must be non-trivial for the comparison to mean anything.
  ASSERT_GT(serial.size(), 100u);

  for (int shards : {1, 2, 8}) {
    auto sharded = RunSharded(catalog, trace, shards, /*merge_interval=*/4096);
    EXPECT_EQ(serial, sharded) << "shards=" << shards;
  }
}

TEST(ShardedRuntimeGoldenTest, IncrementalMergeMatchesFlushOnlyMerge) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);
  auto serial = RunSerial(catalog, trace);
  // Aggressive incremental merging (every 64 events) must not change the
  // delivered order.
  auto sharded = RunSharded(catalog, trace, /*shards=*/4, /*merge_interval=*/64);
  EXPECT_EQ(serial, sharded);
}

// --- Watermarks & incremental delivery --------------------------------------

TEST(ShardedRuntimeTest, WatermarkReleasesTailNegationOnQuietShard) {
  Catalog catalog = Catalog::RetailDemo();
  RuntimeConfig config;
  config.shard_count = 4;
  config.batch_size = 1;
  config.merge_interval = 4;
  ShardedRuntime runtime(&catalog, config);

  int delivered = 0;
  auto id = runtime.Register(
      "EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 5 RETURN x.TagId",
      [&delivered](const OutputRecord&) { ++delivered; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(runtime.IsSharded(id.value()));

  // One match for TAG0 at ts 1, deferred until stream time passes 6. Then
  // only other tags' events arrive: TAG0's shard may never see another event
  // of its partition, so release must come from the broadcast watermark.
  EventBuilder b0(catalog, "SHELF_READING");
  auto first = b0.Set("TagId", "TAG0").Set("AreaId", 1).Build(1, 0);
  ASSERT_TRUE(first.ok());
  runtime.OnEvent(first.value());
  for (int i = 1; i <= 60; ++i) {
    EventBuilder b(catalog, "SHELF_READING");
    auto e = b.Set("TagId", "TAG" + std::to_string(1 + i % 8))
                 .Set("AreaId", 1)
                 .Build(1 + i, static_cast<SequenceNumber>(i));
    ASSERT_TRUE(e.ok());
    runtime.OnEvent(e.value());
  }
  runtime.WaitIdle();
  EXPECT_GE(delivered, 1) << "deferred match not released before flush";
  runtime.OnFlush();
  // Flush may only add the still-open tails (later tags), never lose output.
  EXPECT_GE(delivered, 50);
}

// --- Dispatch-log compaction (memory bound) ----------------------------------

TEST(DispatchLogCompactionTest, LogStaysBoundedOnLongStream) {
  // The acceptance bound: after N >> window events the live dispatch log is
  // O(shards x in-flight window) — backpressured batches plus a few merge
  // intervals — not O(N).
  Catalog catalog = Catalog::RetailDemo();
  RuntimeConfig config;
  config.shard_count = 4;
  config.batch_size = 32;
  config.queue_capacity = 16;
  config.merge_interval = 256;
  config.log_compact_min = 64;
  ShardedRuntime runtime(&catalog, config);

  uint64_t outputs = 0;
  auto id = runtime.Register(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 20 RETURN x.TagId",
      [&outputs](const OutputRecord&) { ++outputs; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  constexpr uint64_t kEvents = 50000;
  for (uint64_t i = 0; i < kEvents; ++i) {
    const char* type = (i % 7 == 6) ? "EXIT_READING" : "SHELF_READING";
    EventBuilder b(catalog, type);
    auto e = b.Set("TagId", "TAG" + std::to_string(i % 40))
                 .Set("AreaId", static_cast<int64_t>(i % 4))
                 .Build(static_cast<Timestamp>(1 + i / 4),
                        static_cast<SequenceNumber>(i));
    ASSERT_TRUE(e.ok());
    runtime.OnEvent(e.value());
  }
  ASSERT_EQ(runtime.events_dispatched(), kEvents);

  // In-flight bound: every worker can hold queue_capacity batches plus the
  // dispatcher's pending one, and merges (hence compactions) run every
  // merge_interval events.
  size_t in_flight = static_cast<size_t>(config.shard_count + 1) *
                     (config.queue_capacity + 1) * config.batch_size;
  size_t bound = in_flight + 8 * config.merge_interval + config.log_compact_min;
  EXPECT_LE(runtime.peak_dispatch_log_len(), bound);
  EXPECT_LT(runtime.peak_dispatch_log_len(), kEvents / 10);
  EXPECT_GT(runtime.log_compactions(), 0u);

  runtime.WaitIdle();
  // Quiescent: the whole log is below the watermark and reclaimed.
  EXPECT_LE(runtime.dispatch_log_len(), config.log_compact_min);
  EXPECT_EQ(runtime.log_entries_compacted() + runtime.dispatch_log_len(),
            kEvents);
  runtime.OnFlush();
  EXPECT_GT(outputs, 0u);
  EXPECT_EQ(runtime.dispatch_log_len(), 0u);
}

TEST(DispatchLogCompactionTest, IdleShardDoesNotBlockCompaction) {
  // All traffic lands on one shard (single tag); the clock broadcast must
  // advance the idle shards' merge progress so the watermark — and with it
  // compaction — keeps moving.
  Catalog catalog = Catalog::RetailDemo();
  RuntimeConfig config;
  config.shard_count = 8;
  config.batch_size = 16;
  config.merge_interval = 128;
  config.log_compact_min = 64;
  ShardedRuntime runtime(&catalog, config);

  uint64_t outputs = 0;
  auto id = runtime.Register(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 10 RETURN x.TagId",
      [&outputs](const OutputRecord&) { ++outputs; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(runtime.IsSharded(id.value()));

  constexpr uint64_t kEvents = 20000;
  for (uint64_t i = 0; i < kEvents; ++i) {
    EventBuilder b(catalog, i % 5 == 4 ? "EXIT_READING" : "SHELF_READING");
    auto e = b.Set("TagId", "LONER")
                 .Set("AreaId", int64_t{1})
                 .Build(static_cast<Timestamp>(1 + i / 2),
                        static_cast<SequenceNumber>(i));
    ASSERT_TRUE(e.ok());
    runtime.OnEvent(e.value());
  }
  EXPECT_GT(runtime.log_compactions(), 0u);
  EXPECT_LT(runtime.peak_dispatch_log_len(), kEvents / 4);
  runtime.OnFlush();
  EXPECT_GT(outputs, 0u);
}

TEST(DispatchLogCompactionTest, CompactionRacesTailNegationDeferralRelease) {
  // Tail-negation deferrals resolve their trigger (first event past the
  // release window) against the dispatch log; aggressive compaction must
  // never truncate an entry a parked deferral still needs. Byte-identical
  // output vs serial is the proof.
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);
  const char* kQuery =
      "EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 30 RETURN x.TagId, x.Timestamp AS t";

  std::vector<std::string> serial;
  {
    QueryEngine engine(&catalog);
    ASSERT_TRUE(engine
                    .Register(kQuery,
                              [&serial](const OutputRecord& r) {
                                serial.push_back(r.ToString());
                              })
                    .ok());
    for (const auto& event : trace) engine.OnEvent(event);
    engine.OnFlush();
  }
  ASSERT_GT(serial.size(), 50u);

  std::vector<std::string> sharded;
  RuntimeConfig config;
  config.shard_count = 4;
  config.batch_size = 4;
  config.merge_interval = 32;  // merge + compact as often as possible
  config.log_compact_min = 16;
  ShardedRuntime runtime(&catalog, config);
  ASSERT_TRUE(runtime
                  .Register(kQuery,
                            [&sharded](const OutputRecord& r) {
                              sharded.push_back(r.ToString());
                            })
                  .ok());
  for (const auto& event : trace) runtime.OnEvent(event);
  runtime.OnFlush();
  EXPECT_EQ(serial, sharded);
  EXPECT_GT(runtime.log_compactions(), 0u);
}

// --- Registration lifecycle --------------------------------------------------

TEST(ShardedRuntimeTest, UnregisterStopsDelivery) {
  Catalog catalog = Catalog::RetailDemo();
  RuntimeConfig config;
  config.shard_count = 2;
  config.merge_interval = 1;
  config.batch_size = 1;
  ShardedRuntime runtime(&catalog, config);
  int count = 0;
  auto id = runtime.Register("EVENT SHELF_READING s RETURN s.TagId",
                             [&count](const OutputRecord&) { ++count; });
  ASSERT_TRUE(id.ok());

  EventBuilder b(catalog, "SHELF_READING");
  auto e = b.Set("TagId", "T").Set("AreaId", 0).Build(1, 0);
  ASSERT_TRUE(e.ok());
  runtime.OnEvent(e.value());
  runtime.WaitIdle();
  EXPECT_EQ(count, 1);

  ASSERT_TRUE(runtime.Unregister(id.value()).ok());
  EXPECT_FALSE(runtime.Unregister(id.value()).ok());
  EventBuilder b2(catalog, "SHELF_READING");
  auto e2 = b2.Set("TagId", "T").Set("AreaId", 0).Build(2, 1);
  ASSERT_TRUE(e2.ok());
  runtime.OnEvent(e2.value());
  runtime.OnFlush();
  EXPECT_EQ(count, 1);
}

// --- Named FROM streams ------------------------------------------------------

/// The golden workload rewritten against a named stream: key-partitioned
/// patterns (middle and tail negation), a stateless projection, and a
/// broadcast aggregate, all reading `FROM sensors`.
const char* kFromStreamQueries[] = {
    "FROM sensors "
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 120",
    "FROM sensors "
    "EVENT SEQ(SHELF_READING x, COUNTER_READING y, !(EXIT_READING z)) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 60 "
    "RETURN x.TagId, x.Timestamp AS shelf_ts",
    "FROM sensors EVENT SHELF_READING s WHERE s.AreaId = 2 RETURN s.TagId",
    "FROM sensors EVENT EXIT_READING e RETURN COUNT(*) AS exits",
};

TEST(ShardedRuntimeFromStreamTest, ByteIdenticalToSerialAcrossShardCounts) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);

  // Serial reference: the same engine entry point the runtime mirrors
  // (OnStreamEvent), fed in identical order.
  std::vector<std::string> serial;
  {
    QueryEngine engine(&catalog);
    for (size_t q = 0; q < std::size(kFromStreamQueries); ++q) {
      auto id = engine.Register(kFromStreamQueries[q],
                                [&serial, q](const OutputRecord& record) {
                                  serial.push_back("q" + std::to_string(q) +
                                                   "|" + record.ToString());
                                });
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    for (const auto& event : trace) engine.OnStreamEvent("sensors", event);
    engine.OnFlush();
  }
  ASSERT_GT(serial.size(), 50u);

  for (int shards : {2, 8}) {
    std::vector<std::string> sharded;
    RuntimeConfig config;
    config.shard_count = shards;
    config.merge_interval = 512;
    config.batch_size = 64;
    config.log_compact_min = 128;
    ShardedRuntime runtime(&catalog, config);
    for (size_t q = 0; q < std::size(kFromStreamQueries); ++q) {
      auto id = runtime.Register(kFromStreamQueries[q],
                                 [&sharded, q](const OutputRecord& record) {
                                   sharded.push_back("q" + std::to_string(q) +
                                                     "|" + record.ToString());
                                 });
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    // Patterns and the projection shard; the aggregate is broadcast.
    EXPECT_TRUE(runtime.IsSharded(1));
    EXPECT_TRUE(runtime.IsSharded(2));
    EXPECT_TRUE(runtime.IsSharded(3));
    EXPECT_FALSE(runtime.IsSharded(4));
    // Mixed-case feed: stream names are case-insensitive end to end.
    for (const auto& event : trace) runtime.OnStreamEvent("Sensors", event);
    runtime.OnFlush();
    EXPECT_EQ(serial, sharded) << "shards=" << shards;
  }
}

TEST(ShardedRuntimeFromStreamTest, MixedStreamsInterleaveInDispatchOrder) {
  // One query on the default input, one on a named stream, events
  // interleaved: merged output must reproduce the exact serial interleaving
  // (the order of the OnEvent/OnStreamEvent calls), including incremental
  // merges in multi-stream mode.
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);
  const char* kDefaultQuery =
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 80 RETURN x.TagId, z.Timestamp AS t";
  const char* kNamedQuery =
      "FROM belt EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 40 RETURN x.TagId";

  auto feed = [&](QueryEngine* engine, ShardedRuntime* runtime) {
    // Even positions -> default input, odd -> named stream. Each stream
    // sees strictly increasing (if sparse) seqs, exactly what independent
    // sources produce.
    for (size_t i = 0; i < trace.size(); ++i) {
      const EventPtr& event = trace[i];
      if (i % 2 == 0) {
        if (engine != nullptr) engine->OnEvent(event);
        if (runtime != nullptr) runtime->OnEvent(event);
      } else {
        if (engine != nullptr) engine->OnStreamEvent("belt", event);
        if (runtime != nullptr) runtime->OnStreamEvent("belt", event);
      }
    }
  };

  std::vector<std::string> serial;
  {
    QueryEngine engine(&catalog);
    ASSERT_TRUE(engine
                    .Register(kDefaultQuery,
                              [&serial](const OutputRecord& r) {
                                serial.push_back("d|" + r.ToString());
                              })
                    .ok());
    ASSERT_TRUE(engine
                    .Register(kNamedQuery,
                              [&serial](const OutputRecord& r) {
                                serial.push_back("n|" + r.ToString());
                              })
                    .ok());
    feed(&engine, nullptr);
    engine.OnFlush();
  }
  ASSERT_GT(serial.size(), 20u);

  for (int shards : {2, 8}) {
    std::vector<std::string> sharded;
    RuntimeConfig config;
    config.shard_count = shards;
    config.merge_interval = 256;
    config.batch_size = 32;
    config.log_compact_min = 64;
    ShardedRuntime runtime(&catalog, config);
    ASSERT_TRUE(runtime
                    .Register(kDefaultQuery,
                              [&sharded](const OutputRecord& r) {
                                sharded.push_back("d|" + r.ToString());
                              })
                    .ok());
    ASSERT_TRUE(runtime
                    .Register(kNamedQuery,
                              [&sharded](const OutputRecord& r) {
                                sharded.push_back("n|" + r.ToString());
                              })
                    .ok());
    feed(nullptr, &runtime);
    runtime.OnFlush();
    EXPECT_EQ(serial, sharded) << "shards=" << shards;
  }
}

TEST(ShardedRuntimeTest, StatsAggregateAcrossWorkers) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);
  RuntimeConfig config;
  config.shard_count = 4;
  ShardedRuntime runtime(&catalog, config);
  uint64_t outputs = 0;
  auto id = runtime.Register(kGoldenQueries[0],
                             [&outputs](const OutputRecord&) { ++outputs; });
  ASSERT_TRUE(id.ok());
  for (const auto& event : trace) runtime.OnEvent(event);
  runtime.OnFlush();
  auto stats = runtime.Stats();
  EXPECT_EQ(stats.queries, 1u);
  // Every event lands on exactly one shard.
  EXPECT_EQ(stats.events_processed, trace.size());
  EXPECT_EQ(stats.outputs, outputs);
  EXPECT_GT(outputs, 0u);
  EXPECT_EQ(runtime.records_merged(), outputs);
  auto full = runtime.FullStats();
  EXPECT_EQ(full.engine.outputs, outputs);
  EXPECT_EQ(full.events_dispatched, trace.size());
  EXPECT_EQ(full.records_merged, outputs);
  EXPECT_EQ(full.merge_pending, 0u);
  EXPECT_EQ(full.dispatch_log_len, 0u);  // DrainFinal cleared the logs
  EXPECT_GE(full.peak_dispatch_log_len, 1u);
  EXPECT_EQ(full.stream_count, 1u);  // default input only
  std::string report = runtime.StatsReport();
  EXPECT_NE(report.find("runtime shards=4"), std::string::npos);
  EXPECT_NE(report.find("dispatch log:"), std::string::npos);
  EXPECT_NE(report.find("stream <default>:"), std::string::npos);
}

// --- Engine-level additions used by the runtime ------------------------------

TEST(QueryEngineRuntimeSupportTest, RegisterAsUsesExplicitIdAndDetectsClash) {
  Catalog catalog = Catalog::RetailDemo();
  QueryEngine engine(&catalog);
  auto id = engine.RegisterAs(42, "EVENT SHELF_READING s RETURN s.TagId",
                              nullptr);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 42);
  EXPECT_NE(engine.plan(42), nullptr);
  auto clash = engine.RegisterAs(42, "EVENT SHELF_READING s RETURN s.TagId",
                                 nullptr);
  EXPECT_FALSE(clash.ok());
  // Auto ids continue past the explicit one.
  auto next = engine.Register("EVENT SHELF_READING s RETURN s.TagId", nullptr);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 43);
}

TEST(QueryEngineRuntimeSupportTest, WatermarkReleasesTailNegation) {
  Catalog catalog = Catalog::RetailDemo();
  QueryEngine engine(&catalog);
  int outputs = 0;
  auto id = engine.Register(
      "EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 5 RETURN x.TagId",
      [&outputs](const OutputRecord&) { ++outputs; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EventBuilder b(catalog, "SHELF_READING");
  auto e = b.Set("TagId", "T").Set("AreaId", 0).Build(1, 0);
  ASSERT_TRUE(e.ok());
  engine.OnEvent(e.value());
  EXPECT_EQ(outputs, 0);
  engine.OnWatermark(6);  // window closes at 6; release needs now > 6
  EXPECT_EQ(outputs, 0);
  engine.OnWatermark(7);
  EXPECT_EQ(outputs, 1);
}

TEST(QueryEngineRuntimeSupportTest, StreamWatermarkReleasesNamedStreamDeferral) {
  Catalog catalog = Catalog::RetailDemo();
  QueryEngine engine(&catalog);
  int outputs = 0;
  auto id = engine.Register(
      "FROM belt EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 5 RETURN x.TagId",
      [&outputs](const OutputRecord&) { ++outputs; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EventBuilder b(catalog, "SHELF_READING");
  auto e = b.Set("TagId", "T").Set("AreaId", 0).Build(1, 0);
  ASSERT_TRUE(e.ok());
  engine.OnStreamEvent("belt", e.value());
  EXPECT_EQ(outputs, 0);
  // The default-input clock must not touch named-stream plans.
  engine.OnWatermark(100);
  EXPECT_EQ(outputs, 0);
  engine.OnStreamWatermark("BELT", 7);  // case-insensitive; 7 > 1 + 5
  EXPECT_EQ(outputs, 1);
}

TEST(QueryEngineRuntimeSupportTest, OutputRecordsCarrySerialOrderStamp) {
  Catalog catalog = Catalog::RetailDemo();
  QueryEngine engine(&catalog);
  std::vector<OutputRecord> records;
  auto immediate = engine.Register(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 10",
      [&records](const OutputRecord& r) { records.push_back(r); });
  ASSERT_TRUE(immediate.ok());
  auto deferred = engine.Register(
      "EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 5 RETURN x.TagId",
      [&records](const OutputRecord& r) { records.push_back(r); });
  ASSERT_TRUE(deferred.ok());

  EventBuilder b1(catalog, "SHELF_READING");
  auto shelf = b1.Set("TagId", "A").Set("AreaId", 0).Build(2, 0);
  ASSERT_TRUE(shelf.ok());
  EventBuilder b2(catalog, "EXIT_READING");
  auto exit_event = b2.Set("TagId", "A").Set("AreaId", 3).Build(4, 1);
  ASSERT_TRUE(exit_event.ok());
  engine.OnEvent(shelf.value());
  engine.OnEvent(exit_event.value());
  engine.OnFlush();

  ASSERT_EQ(records.size(), 1u);  // tail negation suppressed by the exit
  EXPECT_FALSE(records[0].deferred);
  EXPECT_EQ(records[0].emit_ts, 4);
  EXPECT_EQ(records[0].emit_seq, 1u);
}

}  // namespace
}  // namespace sase
