#include "runtime/sharded_runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <iterator>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/catalog.h"
#include "engine/query_engine.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "rfid/workload.h"
#include "runtime/event_batch.h"
#include "runtime/output_merger.h"
#include "runtime/partitioner.h"
#include "util/value_codec.h"

namespace sase {
namespace {

// --- SPSC ring -------------------------------------------------------------

TEST(SpscRingTest, OrderedTransferAcrossThreads) {
  SpscRing<int> ring(8);
  constexpr int kItems = 10000;
  std::vector<int> received;
  std::thread consumer([&] {
    int item = 0;
    while (ring.Pop(&item)) received.push_back(item);
  });
  for (int i = 0; i < kItems; ++i) ring.Push(int(i));
  ring.Close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(SpscRingTest, TryPushFailsWhenFullAndCloseDrains) {
  SpscRing<int> ring(2);  // capacity rounds to 2
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_FALSE(ring.TryPush(3));
  ring.Close();
  int out = 0;
  EXPECT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.Pop(&out));  // closed and drained
}

// --- Partitioner classification --------------------------------------------

class PartitionerTest : public ::testing::Test {
 protected:
  AnalyzedQuery Analyze(const std::string& text) {
    auto parsed = Parser::Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    Analyzer analyzer(&catalog_, TimeConfig{});
    auto analyzed = analyzer.Analyze(std::move(parsed).value());
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    return std::move(analyzed).value();
  }

  bool Shardable(const std::string& text, PlanOptions options = {}) {
    return Partitioner::Shardable(Analyze(text), catalog_, "TagId", options);
  }

  Catalog catalog_ = Catalog::RetailDemo();
};

TEST_F(PartitionerTest, TagEquivalenceSequenceIsShardable) {
  EXPECT_TRUE(Shardable(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100"));
}

TEST_F(PartitionerTest, StatelessSingleEventQueryIsShardable) {
  EXPECT_TRUE(Shardable(
      "EVENT SHELF_READING s WHERE s.AreaId = 2 RETURN s.TagId"));
}

TEST_F(PartitionerTest, AggregateQueryIsNotShardable) {
  EXPECT_FALSE(Shardable("EVENT EXIT_READING e RETURN COUNT(*)"));
}

TEST_F(PartitionerTest, NonKeyEquivalenceIsNotShardable) {
  EXPECT_FALSE(Shardable(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.AreaId = z.AreaId WITHIN 50"));
}

TEST_F(PartitionerTest, UnpartitionedNegationIsNotShardable) {
  // The negated component does not join the TagId equivalence class: any
  // counter reading suppresses, so every shard would need every event.
  EXPECT_FALSE(Shardable(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 100"));
}

TEST_F(PartitionerTest, DisabledPartitioningIsNotShardable) {
  PlanOptions options;
  options.use_partitioning = false;
  EXPECT_FALSE(Shardable(
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100",
      options));
}

TEST_F(PartitionerTest, FromStreamQueryShardsLikeDefaultInput) {
  // Stream-aware classification: the input stream is irrelevant to
  // shardability — the same pattern shards whether it reads the default
  // input or a named FROM stream.
  EXPECT_TRUE(Shardable(
      "FROM sensors "
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 100"));
  EXPECT_TRUE(Shardable("FROM sensors EVENT SHELF_READING s RETURN s.TagId"));
  EXPECT_FALSE(Shardable("FROM sensors EVENT EXIT_READING e RETURN COUNT(*)"));
}

TEST_F(PartitionerTest, RouteKeepsPerStreamDispatchStamps) {
  Partitioner partitioner(&catalog_, "TagId", 2);
  StreamId def = partitioner.InternStream("");
  StreamId sensors = partitioner.InternStream("sensors");
  EXPECT_EQ(def, kDefaultStream);
  EXPECT_EQ(partitioner.InternStream("sensors"), sensors);  // stable

  EventBuilder b(catalog_, "SHELF_READING");
  auto event = b.Set("TagId", "TAG0").Set("AreaId", 1).Build(10, 0);
  ASSERT_TRUE(event.ok());
  int shard = partitioner.Route(sensors, *event.value());
  ASSERT_GE(shard, 0);
  ASSERT_LT(shard, 2);

  const auto& streams = partitioner.streams();
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[def].events, 0u);
  EXPECT_EQ(streams[sensors].name, "sensors");
  EXPECT_EQ(streams[sensors].events, 1u);
  EXPECT_EQ(streams[sensors].clock, 10);
  EXPECT_EQ(streams[sensors].per_shard[static_cast<size_t>(shard)], 1u);
}

TEST_F(PartitionerTest, RoutingIsDeterministicAndKeyStable) {
  Partitioner partitioner(&catalog_, "TagId", 4);
  SyntheticConfig config;
  config.seed = 11;
  config.event_count = 500;
  config.tag_count = 20;
  SyntheticStreamGenerator generator(&catalog_, config);
  auto events = generator.Generate();
  ASSERT_FALSE(events.empty());
  // Same tag -> same shard, regardless of event type.
  std::map<std::string, int> shard_of_tag;
  for (const auto& event : events) {
    const EventSchema& schema = catalog_.schema(event->type());
    AttrIndex tag = schema.FindAttribute("TagId");
    ASSERT_GE(tag, 0);
    int shard = partitioner.ShardFor(*event);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    std::string key = event->attribute(tag).ToString();
    auto [it, inserted] = shard_of_tag.emplace(key, shard);
    if (!inserted) EXPECT_EQ(it->second, shard) << "tag " << key;
  }
  EXPECT_GT(shard_of_tag.size(), 1u);
}

// --- Hot-key sketch and split routing ---------------------------------------

/// Reference space-saving sketch with the original O(capacity) eviction: a
/// full scan for the lowest-indexed minimum-count slot. The production
/// sketch's amortized-O(1) cold-queue must evict the exact same slots, so
/// the two must hold identical (key, count, error) contents after any
/// observation sequence.
struct NaiveSpaceSaving {
  struct Slot {
    std::string key;
    uint64_t count = 0;
    uint64_t error = 0;
  };
  std::vector<Slot> slots;

  void Observe(const std::string& key, size_t capacity) {
    for (Slot& slot : slots) {
      if (slot.key == key) {
        ++slot.count;
        return;
      }
    }
    if (slots.size() < capacity) {
      slots.push_back(Slot{key, 1, 0});
      return;
    }
    size_t coldest = 0;
    for (size_t i = 1; i < slots.size(); ++i) {
      if (slots[i].count < slots[coldest].count) coldest = i;
    }
    Slot& slot = slots[coldest];
    slot.error = slot.count;
    slot.count += 1;
    slot.key = key;
  }
};

TEST_F(PartitionerTest, HotKeySketchMatchesNaiveEviction) {
  constexpr size_t kCapacity = 8;
  Partitioner partitioner(&catalog_, "TagId", 4);
  partitioner.EnableHotKeyTracking(kCapacity);
  auto shelf_type = catalog_.FindType("SHELF_READING");
  ASSERT_TRUE(shelf_type.ok());
  AttrIndex tag_index =
      catalog_.schema(shelf_type.value()).FindAttribute("TagId");
  ASSERT_GE(tag_index, 0);
  NaiveSpaceSaving naive;
  // Skewed mixture: a few hot tags plus a long cold tail, far more distinct
  // keys than slots, so eviction (and its tie-breaking) runs constantly.
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> pct(0, 99);
  std::uniform_int_distribution<int> hot(0, 3);
  std::uniform_int_distribution<int> cold(0, 199);
  for (int i = 0; i < 6000; ++i) {
    std::string tag = pct(rng) < 60 ? "HOT" + std::to_string(hot(rng))
                                    : "COLD" + std::to_string(cold(rng));
    EventBuilder b(catalog_, "SHELF_READING");
    auto event = b.Set("TagId", tag).Set("AreaId", 1).Build(i, i);
    ASSERT_TRUE(event.ok());
    partitioner.Route(kDefaultStream, *event.value());
    naive.Observe(event.value()->attribute(tag_index).ToString(), kCapacity);
    if (i % 251 == 0 || i == 5999) {
      auto stats = partitioner.HotKeys(kDefaultStream);
      ASSERT_EQ(stats.size(), naive.slots.size());
      std::vector<std::tuple<std::string, uint64_t, uint64_t>> got, want;
      for (const auto& s : stats) {
        got.emplace_back(s.key.ToString(), s.count, s.error);
      }
      for (const auto& s : naive.slots) {
        want.emplace_back(s.key, s.count, s.error);
      }
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got, want) << "after " << (i + 1) << " observations";
    }
  }
  EXPECT_EQ(partitioner.keyed_events(kDefaultStream), 6000u);
}

TEST_F(PartitionerTest, SpreadSplitRoundRobinsAndUnsplitRestoresPin) {
  Partitioner partitioner(&catalog_, "TagId", 4);
  auto make = [&](const std::string& tag, int64_t seq) {
    EventBuilder b(catalog_, "SHELF_READING");
    auto event = b.Set("TagId", tag).Set("AreaId", 1).Build(seq, seq);
    EXPECT_TRUE(event.ok());
    return std::move(event).value();
  };
  EventPtr probe = make("HOT", 0);
  int pinned = partitioner.ShardFor(*probe);
  AttrIndex tag_index =
      catalog_.schema(probe->type()).FindAttribute("TagId");
  Value key = probe->attribute(tag_index);
  partitioner.Split(kDefaultStream, key, Partitioner::SplitMode::kSpread);
  EXPECT_TRUE(partitioner.IsSplit(kDefaultStream, key));
  EXPECT_EQ(partitioner.split_count(), 1u);
  // The split key cycles shards round-robin...
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(partitioner.ShardFor(kDefaultStream, *make("HOT", i)),
              static_cast<int>(i % 4));
  }
  // ...while other keys and the same key on other streams keep their pins.
  EXPECT_EQ(partitioner.ShardFor(kDefaultStream, *make("OTHER", 50)),
            partitioner.ShardFor(*make("OTHER", 51)));
  StreamId sensors = partitioner.InternStream("sensors");
  EXPECT_EQ(partitioner.ShardFor(sensors, *make("HOT", 99)), pinned);
  EXPECT_TRUE(partitioner.Unsplit(kDefaultStream, key));
  EXPECT_FALSE(partitioner.Unsplit(kDefaultStream, key));
  EXPECT_EQ(partitioner.split_count(), 0u);
  EXPECT_EQ(partitioner.ShardFor(kDefaultStream, *make("HOT", 100)), pinned);
}

TEST_F(PartitionerTest, SplitsOrderIsTotalAcrossValueTypes) {
  // int 7 and string "7" render identically via ToString; the checkpoint
  // order must still be a total one (type-tagged encoding), identical for
  // any insertion order — a run and its recovered twin write the same
  // SPLIT lines in the same sequence.
  std::vector<Value> keys = {Value(7), Value("7"), Value(true),
                             Value("TRUE")};
  auto splits_for = [&](const std::vector<size_t>& order) {
    Partitioner partitioner(&catalog_, "TagId", 4);
    for (size_t i : order) {
      partitioner.Split(kDefaultStream, keys[i],
                        Partitioner::SplitMode::kSpread);
    }
    std::vector<std::string> rendered;
    for (const Partitioner::SplitInfo& info : partitioner.Splits()) {
      rendered.push_back(EncodeValue(info.key));
    }
    return rendered;
  };
  std::vector<std::string> forward = splits_for({0, 1, 2, 3});
  ASSERT_EQ(forward.size(), 4u);
  EXPECT_TRUE(std::is_sorted(forward.begin(), forward.end()));
  EXPECT_EQ(forward, splits_for({3, 2, 1, 0}));
  EXPECT_EQ(forward, splits_for({2, 0, 3, 1}));
}

TEST_F(PartitionerTest, SecondarySplitPinsKeySecondaryPairs) {
  Partitioner partitioner(&catalog_, "TagId", 4);
  auto make_load = [&](const std::string& container, int64_t seq) {
    EventBuilder b(catalog_, "LOAD_READING");
    auto event = b.Set("TagId", "HOT")
                     .Set("AreaId", 1)
                     .Set("ContainerId", container)
                     .Build(seq, seq);
    EXPECT_TRUE(event.ok());
    return std::move(event).value();
  };
  EventPtr probe = make_load("C0", 0);
  int pinned = partitioner.ShardFor(*probe);
  Value key = probe->attribute(
      catalog_.schema(probe->type()).FindAttribute("TagId"));
  partitioner.Split(kDefaultStream, key, Partitioner::SplitMode::kSecondary,
                    "ContainerId");
  // Each (key, secondary) pair pins to one stable shard, and the sub-hash
  // spreads the key over more than one shard.
  std::map<std::string, int> shard_of_container;
  for (int round = 0; round < 3; ++round) {
    for (int c = 0; c < 8; ++c) {
      std::string container = "C" + std::to_string(c);
      int shard = partitioner.ShardFor(
          kDefaultStream, *make_load(container, round * 8 + c));
      ASSERT_GE(shard, 0);
      ASSERT_LT(shard, 4);
      auto [it, inserted] = shard_of_container.emplace(container, shard);
      if (!inserted) EXPECT_EQ(it->second, shard) << "container " << container;
    }
  }
  std::set<int> shards;
  for (const auto& [container, shard] : shard_of_container) {
    shards.insert(shard);
  }
  EXPECT_GT(shards.size(), 1u);
  // A type lacking the secondary attribute keeps the primary key-hash pin.
  EventBuilder b(catalog_, "SHELF_READING");
  auto shelf = b.Set("TagId", "HOT").Set("AreaId", 1).Build(100, 100);
  ASSERT_TRUE(shelf.ok());
  EXPECT_EQ(partitioner.ShardFor(kDefaultStream, *shelf.value()), pinned);
}

// --- Golden determinism -----------------------------------------------------

/// The mixed continuous-query workload of the golden test: key-partitioned
/// patterns (middle and tail negation), a stateless projection, a running
/// aggregate (broadcast), and a non-key pattern (broadcast).
const char* kGoldenQueries[] = {
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 120",
    "EVENT SEQ(SHELF_READING x, COUNTER_READING y, !(EXIT_READING z)) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 60 "
    "RETURN x.TagId, x.Timestamp AS shelf_ts, y.Timestamp AS counter_ts",
    "EVENT SHELF_READING s WHERE s.AreaId = 2 RETURN s.TagId, s.AreaId",
    "EVENT EXIT_READING e RETURN COUNT(*) AS exits",
    "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
    "WHERE x.AreaId = z.AreaId WITHIN 40",
};

std::vector<EventPtr> GoldenTrace(const Catalog& catalog) {
  SyntheticConfig config;
  config.seed = 7;
  config.event_count = 4000;
  config.tag_count = 60;
  config.area_count = 4;
  SyntheticStreamGenerator generator(&catalog, config);
  return generator.Generate();
}

/// Runs the golden workload through a serial QueryEngine; output lines are
/// "q<index>|<record>" in emission order.
std::vector<std::string> RunSerial(const Catalog& catalog,
                                   const std::vector<EventPtr>& trace) {
  std::vector<std::string> lines;
  QueryEngine engine(&catalog);
  for (size_t q = 0; q < std::size(kGoldenQueries); ++q) {
    auto id = engine.Register(kGoldenQueries[q],
                              [&lines, q](const OutputRecord& record) {
                                lines.push_back("q" + std::to_string(q) + "|" +
                                                record.ToString());
                              });
    EXPECT_TRUE(id.ok()) << id.status().ToString();
  }
  for (const auto& event : trace) engine.OnEvent(event);
  engine.OnFlush();
  return lines;
}

std::vector<std::string> RunSharded(const Catalog& catalog,
                                    const std::vector<EventPtr>& trace,
                                    int shards, size_t merge_interval) {
  std::vector<std::string> lines;
  RuntimeConfig config;
  config.shard_count = shards;
  config.merge_interval = merge_interval;
  config.batch_size = 64;
  ShardedRuntime runtime(&catalog, config);
  for (size_t q = 0; q < std::size(kGoldenQueries); ++q) {
    auto id = runtime.Register(kGoldenQueries[q],
                               [&lines, q](const OutputRecord& record) {
                                 lines.push_back("q" + std::to_string(q) + "|" +
                                                 record.ToString());
                               });
    EXPECT_TRUE(id.ok()) << id.status().ToString();
  }
  // The pattern queries shard; aggregate and non-key pattern do not.
  EXPECT_TRUE(runtime.IsSharded(1));
  EXPECT_TRUE(runtime.IsSharded(2));
  EXPECT_TRUE(runtime.IsSharded(3));
  EXPECT_FALSE(runtime.IsSharded(4));
  EXPECT_FALSE(runtime.IsSharded(5));
  for (const auto& event : trace) runtime.OnEvent(event);
  runtime.OnFlush();
  return lines;
}

TEST(ShardedRuntimeGoldenTest, ByteIdenticalToSerialAcrossShardCounts) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);
  auto serial = RunSerial(catalog, trace);
  // The workload must be non-trivial for the comparison to mean anything.
  ASSERT_GT(serial.size(), 100u);

  for (int shards : {1, 2, 8}) {
    auto sharded = RunSharded(catalog, trace, shards, /*merge_interval=*/4096);
    EXPECT_EQ(serial, sharded) << "shards=" << shards;
  }
}

TEST(ShardedRuntimeGoldenTest, IncrementalMergeMatchesFlushOnlyMerge) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);
  auto serial = RunSerial(catalog, trace);
  // Aggressive incremental merging (every 64 events) must not change the
  // delivered order.
  auto sharded = RunSharded(catalog, trace, /*shards=*/4, /*merge_interval=*/64);
  EXPECT_EQ(serial, sharded);
}

// --- Watermarks & incremental delivery --------------------------------------

TEST(ShardedRuntimeTest, WatermarkReleasesTailNegationOnQuietShard) {
  Catalog catalog = Catalog::RetailDemo();
  RuntimeConfig config;
  config.shard_count = 4;
  config.batch_size = 1;
  config.merge_interval = 4;
  ShardedRuntime runtime(&catalog, config);

  int delivered = 0;
  auto id = runtime.Register(
      "EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 5 RETURN x.TagId",
      [&delivered](const OutputRecord&) { ++delivered; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(runtime.IsSharded(id.value()));

  // One match for TAG0 at ts 1, deferred until stream time passes 6. Then
  // only other tags' events arrive: TAG0's shard may never see another event
  // of its partition, so release must come from the broadcast watermark.
  EventBuilder b0(catalog, "SHELF_READING");
  auto first = b0.Set("TagId", "TAG0").Set("AreaId", 1).Build(1, 0);
  ASSERT_TRUE(first.ok());
  runtime.OnEvent(first.value());
  for (int i = 1; i <= 60; ++i) {
    EventBuilder b(catalog, "SHELF_READING");
    auto e = b.Set("TagId", "TAG" + std::to_string(1 + i % 8))
                 .Set("AreaId", 1)
                 .Build(1 + i, static_cast<SequenceNumber>(i));
    ASSERT_TRUE(e.ok());
    runtime.OnEvent(e.value());
  }
  runtime.WaitIdle();
  EXPECT_GE(delivered, 1) << "deferred match not released before flush";
  runtime.OnFlush();
  // Flush may only add the still-open tails (later tags), never lose output.
  EXPECT_GE(delivered, 50);
}

// --- Dispatch-log compaction (memory bound) ----------------------------------

TEST(DispatchLogCompactionTest, LogStaysBoundedOnLongStream) {
  // The acceptance bound: after N >> window events the live dispatch log is
  // O(shards x in-flight window) — backpressured batches plus a few merge
  // intervals — not O(N).
  Catalog catalog = Catalog::RetailDemo();
  RuntimeConfig config;
  config.shard_count = 4;
  config.batch_size = 32;
  config.queue_capacity = 16;
  config.merge_interval = 256;
  config.log_compact_min = 64;
  ShardedRuntime runtime(&catalog, config);

  uint64_t outputs = 0;
  auto id = runtime.Register(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 20 RETURN x.TagId",
      [&outputs](const OutputRecord&) { ++outputs; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  constexpr uint64_t kEvents = 50000;
  for (uint64_t i = 0; i < kEvents; ++i) {
    const char* type = (i % 7 == 6) ? "EXIT_READING" : "SHELF_READING";
    EventBuilder b(catalog, type);
    auto e = b.Set("TagId", "TAG" + std::to_string(i % 40))
                 .Set("AreaId", static_cast<int64_t>(i % 4))
                 .Build(static_cast<Timestamp>(1 + i / 4),
                        static_cast<SequenceNumber>(i));
    ASSERT_TRUE(e.ok());
    runtime.OnEvent(e.value());
  }
  ASSERT_EQ(runtime.events_dispatched(), kEvents);

  // In-flight bound: every worker can hold queue_capacity batches plus the
  // dispatcher's pending one, and merges (hence compactions) run every
  // merge_interval events.
  size_t in_flight = static_cast<size_t>(config.shard_count + 1) *
                     (config.queue_capacity + 1) * config.batch_size;
  size_t bound = in_flight + 8 * config.merge_interval + config.log_compact_min;
  EXPECT_LE(runtime.peak_dispatch_log_len(), bound);
  EXPECT_LT(runtime.peak_dispatch_log_len(), kEvents / 10);
  EXPECT_GT(runtime.log_compactions(), 0u);

  runtime.WaitIdle();
  // Quiescent: the whole log is below the watermark and reclaimed.
  EXPECT_LE(runtime.dispatch_log_len(), config.log_compact_min);
  EXPECT_EQ(runtime.log_entries_compacted() + runtime.dispatch_log_len(),
            kEvents);
  runtime.OnFlush();
  EXPECT_GT(outputs, 0u);
  EXPECT_EQ(runtime.dispatch_log_len(), 0u);
}

TEST(DispatchLogCompactionTest, IdleShardDoesNotBlockCompaction) {
  // All traffic lands on one shard (single tag); the clock broadcast must
  // advance the idle shards' merge progress so the watermark — and with it
  // compaction — keeps moving.
  Catalog catalog = Catalog::RetailDemo();
  RuntimeConfig config;
  config.shard_count = 8;
  config.batch_size = 16;
  config.merge_interval = 128;
  config.log_compact_min = 64;
  ShardedRuntime runtime(&catalog, config);

  uint64_t outputs = 0;
  auto id = runtime.Register(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 10 RETURN x.TagId",
      [&outputs](const OutputRecord&) { ++outputs; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(runtime.IsSharded(id.value()));

  constexpr uint64_t kEvents = 20000;
  for (uint64_t i = 0; i < kEvents; ++i) {
    EventBuilder b(catalog, i % 5 == 4 ? "EXIT_READING" : "SHELF_READING");
    auto e = b.Set("TagId", "LONER")
                 .Set("AreaId", int64_t{1})
                 .Build(static_cast<Timestamp>(1 + i / 2),
                        static_cast<SequenceNumber>(i));
    ASSERT_TRUE(e.ok());
    runtime.OnEvent(e.value());
  }
  EXPECT_GT(runtime.log_compactions(), 0u);
  EXPECT_LT(runtime.peak_dispatch_log_len(), kEvents / 4);
  runtime.OnFlush();
  EXPECT_GT(outputs, 0u);
}

TEST(DispatchLogCompactionTest, CompactionRacesTailNegationDeferralRelease) {
  // Tail-negation deferrals resolve their trigger (first event past the
  // release window) against the dispatch log; aggressive compaction must
  // never truncate an entry a parked deferral still needs. Byte-identical
  // output vs serial is the proof.
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);
  const char* kQuery =
      "EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 30 RETURN x.TagId, x.Timestamp AS t";

  std::vector<std::string> serial;
  {
    QueryEngine engine(&catalog);
    ASSERT_TRUE(engine
                    .Register(kQuery,
                              [&serial](const OutputRecord& r) {
                                serial.push_back(r.ToString());
                              })
                    .ok());
    for (const auto& event : trace) engine.OnEvent(event);
    engine.OnFlush();
  }
  ASSERT_GT(serial.size(), 50u);

  std::vector<std::string> sharded;
  RuntimeConfig config;
  config.shard_count = 4;
  config.batch_size = 4;
  config.merge_interval = 32;  // merge + compact as often as possible
  config.log_compact_min = 16;
  ShardedRuntime runtime(&catalog, config);
  ASSERT_TRUE(runtime
                  .Register(kQuery,
                            [&sharded](const OutputRecord& r) {
                              sharded.push_back(r.ToString());
                            })
                  .ok());
  for (const auto& event : trace) runtime.OnEvent(event);
  runtime.OnFlush();
  EXPECT_EQ(serial, sharded);
  EXPECT_GT(runtime.log_compactions(), 0u);
}

// --- Registration lifecycle --------------------------------------------------

TEST(ShardedRuntimeTest, UnregisterStopsDelivery) {
  Catalog catalog = Catalog::RetailDemo();
  RuntimeConfig config;
  config.shard_count = 2;
  config.merge_interval = 1;
  config.batch_size = 1;
  ShardedRuntime runtime(&catalog, config);
  int count = 0;
  auto id = runtime.Register("EVENT SHELF_READING s RETURN s.TagId",
                             [&count](const OutputRecord&) { ++count; });
  ASSERT_TRUE(id.ok());

  EventBuilder b(catalog, "SHELF_READING");
  auto e = b.Set("TagId", "T").Set("AreaId", 0).Build(1, 0);
  ASSERT_TRUE(e.ok());
  runtime.OnEvent(e.value());
  runtime.WaitIdle();
  EXPECT_EQ(count, 1);

  ASSERT_TRUE(runtime.Unregister(id.value()).ok());
  EXPECT_FALSE(runtime.Unregister(id.value()).ok());
  EventBuilder b2(catalog, "SHELF_READING");
  auto e2 = b2.Set("TagId", "T").Set("AreaId", 0).Build(2, 1);
  ASSERT_TRUE(e2.ok());
  runtime.OnEvent(e2.value());
  runtime.OnFlush();
  EXPECT_EQ(count, 1);
}

// --- Named FROM streams ------------------------------------------------------

/// The golden workload rewritten against a named stream: key-partitioned
/// patterns (middle and tail negation), a stateless projection, and a
/// broadcast aggregate, all reading `FROM sensors`.
const char* kFromStreamQueries[] = {
    "FROM sensors "
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 120",
    "FROM sensors "
    "EVENT SEQ(SHELF_READING x, COUNTER_READING y, !(EXIT_READING z)) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 60 "
    "RETURN x.TagId, x.Timestamp AS shelf_ts",
    "FROM sensors EVENT SHELF_READING s WHERE s.AreaId = 2 RETURN s.TagId",
    "FROM sensors EVENT EXIT_READING e RETURN COUNT(*) AS exits",
};

TEST(ShardedRuntimeFromStreamTest, ByteIdenticalToSerialAcrossShardCounts) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);

  // Serial reference: the same engine entry point the runtime mirrors
  // (OnStreamEvent), fed in identical order.
  std::vector<std::string> serial;
  {
    QueryEngine engine(&catalog);
    for (size_t q = 0; q < std::size(kFromStreamQueries); ++q) {
      auto id = engine.Register(kFromStreamQueries[q],
                                [&serial, q](const OutputRecord& record) {
                                  serial.push_back("q" + std::to_string(q) +
                                                   "|" + record.ToString());
                                });
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    for (const auto& event : trace) engine.OnStreamEvent("sensors", event);
    engine.OnFlush();
  }
  ASSERT_GT(serial.size(), 50u);

  for (int shards : {2, 8}) {
    std::vector<std::string> sharded;
    RuntimeConfig config;
    config.shard_count = shards;
    config.merge_interval = 512;
    config.batch_size = 64;
    config.log_compact_min = 128;
    ShardedRuntime runtime(&catalog, config);
    for (size_t q = 0; q < std::size(kFromStreamQueries); ++q) {
      auto id = runtime.Register(kFromStreamQueries[q],
                                 [&sharded, q](const OutputRecord& record) {
                                   sharded.push_back("q" + std::to_string(q) +
                                                     "|" + record.ToString());
                                 });
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    // Patterns and the projection shard; the aggregate is broadcast.
    EXPECT_TRUE(runtime.IsSharded(1));
    EXPECT_TRUE(runtime.IsSharded(2));
    EXPECT_TRUE(runtime.IsSharded(3));
    EXPECT_FALSE(runtime.IsSharded(4));
    // Mixed-case feed: stream names are case-insensitive end to end.
    for (const auto& event : trace) runtime.OnStreamEvent("Sensors", event);
    runtime.OnFlush();
    EXPECT_EQ(serial, sharded) << "shards=" << shards;
  }
}

TEST(ShardedRuntimeFromStreamTest, MixedStreamsInterleaveInDispatchOrder) {
  // One query on the default input, one on a named stream, events
  // interleaved: merged output must reproduce the exact serial interleaving
  // (the order of the OnEvent/OnStreamEvent calls), including incremental
  // merges in multi-stream mode.
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);
  const char* kDefaultQuery =
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 80 RETURN x.TagId, z.Timestamp AS t";
  const char* kNamedQuery =
      "FROM belt EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 40 RETURN x.TagId";

  auto feed = [&](QueryEngine* engine, ShardedRuntime* runtime) {
    // Even positions -> default input, odd -> named stream. Each stream
    // sees strictly increasing (if sparse) seqs, exactly what independent
    // sources produce.
    for (size_t i = 0; i < trace.size(); ++i) {
      const EventPtr& event = trace[i];
      if (i % 2 == 0) {
        if (engine != nullptr) engine->OnEvent(event);
        if (runtime != nullptr) runtime->OnEvent(event);
      } else {
        if (engine != nullptr) engine->OnStreamEvent("belt", event);
        if (runtime != nullptr) runtime->OnStreamEvent("belt", event);
      }
    }
  };

  std::vector<std::string> serial;
  {
    QueryEngine engine(&catalog);
    ASSERT_TRUE(engine
                    .Register(kDefaultQuery,
                              [&serial](const OutputRecord& r) {
                                serial.push_back("d|" + r.ToString());
                              })
                    .ok());
    ASSERT_TRUE(engine
                    .Register(kNamedQuery,
                              [&serial](const OutputRecord& r) {
                                serial.push_back("n|" + r.ToString());
                              })
                    .ok());
    feed(&engine, nullptr);
    engine.OnFlush();
  }
  ASSERT_GT(serial.size(), 20u);

  for (int shards : {2, 8}) {
    std::vector<std::string> sharded;
    RuntimeConfig config;
    config.shard_count = shards;
    config.merge_interval = 256;
    config.batch_size = 32;
    config.log_compact_min = 64;
    ShardedRuntime runtime(&catalog, config);
    ASSERT_TRUE(runtime
                    .Register(kDefaultQuery,
                              [&sharded](const OutputRecord& r) {
                                sharded.push_back("d|" + r.ToString());
                              })
                    .ok());
    ASSERT_TRUE(runtime
                    .Register(kNamedQuery,
                              [&sharded](const OutputRecord& r) {
                                sharded.push_back("n|" + r.ToString());
                              })
                    .ok());
    feed(nullptr, &runtime);
    runtime.OnFlush();
    EXPECT_EQ(serial, sharded) << "shards=" << shards;
  }
}

// --- Elastic policy (decision core) ------------------------------------------

TEST(ElasticPolicyTest, GrowsAfterHysteresisAndRespectsCooldown) {
  ElasticConfig config;
  config.enabled = true;
  config.min_shards = 1;
  config.max_shards = 8;
  config.grow_queue_frac = 0.5;
  config.shrink_queue_frac = 0.05;
  config.hysteresis = 2;
  config.cooldown = 3;
  ElasticPolicy policy(config);

  LoadSample hot;
  hot.shards = 2;
  hot.avg_queue_frac = 0.9;
  // One hot sample is noise; the second confirms.
  EXPECT_EQ(policy.Evaluate(hot), ElasticDecision::kHold);
  EXPECT_EQ(policy.Evaluate(hot), ElasticDecision::kGrow);
  EXPECT_EQ(policy.NextShardCount(ElasticDecision::kGrow, 2), 4);
  // Cooldown: the next 3 checks hold even under sustained pressure.
  EXPECT_EQ(policy.Evaluate(hot), ElasticDecision::kHold);
  EXPECT_EQ(policy.Evaluate(hot), ElasticDecision::kHold);
  EXPECT_EQ(policy.Evaluate(hot), ElasticDecision::kHold);
  EXPECT_EQ(policy.Evaluate(hot), ElasticDecision::kHold);  // streak rebuild
  EXPECT_EQ(policy.Evaluate(hot), ElasticDecision::kGrow);
  EXPECT_EQ(policy.grow_decisions(), 2u);
}

TEST(ElasticPolicyTest, ShrinksWhenIdleAndClampsAtBounds) {
  ElasticConfig config;
  config.min_shards = 2;
  config.max_shards = 8;
  config.hysteresis = 2;
  config.cooldown = 0;
  ElasticPolicy policy(config);

  LoadSample idle;
  idle.shards = 4;
  idle.avg_queue_frac = 0.0;
  EXPECT_EQ(policy.Evaluate(idle), ElasticDecision::kHold);
  EXPECT_EQ(policy.Evaluate(idle), ElasticDecision::kShrink);
  EXPECT_EQ(policy.NextShardCount(ElasticDecision::kShrink, 4), 2);
  EXPECT_EQ(policy.NextShardCount(ElasticDecision::kShrink, 2), 2);  // clamp

  // At the floor, sustained idleness never fires.
  idle.shards = 2;
  EXPECT_EQ(policy.Evaluate(idle), ElasticDecision::kHold);
  EXPECT_EQ(policy.Evaluate(idle), ElasticDecision::kHold);
  EXPECT_EQ(policy.shrink_decisions(), 1u);

  // At the ceiling, pressure never fires either.
  LoadSample hot;
  hot.shards = 8;
  hot.avg_queue_frac = 1.0;
  EXPECT_EQ(policy.Evaluate(hot), ElasticDecision::kHold);
  EXPECT_EQ(policy.Evaluate(hot), ElasticDecision::kHold);
  EXPECT_EQ(policy.grow_decisions(), 0u);
}

TEST(ElasticPolicyTest, MixedSamplesResetStreaks) {
  ElasticConfig config;
  config.hysteresis = 2;
  config.cooldown = 0;
  config.max_shards = 8;
  ElasticPolicy policy(config);
  LoadSample hot, calm;
  hot.shards = calm.shards = 2;
  hot.avg_queue_frac = 0.9;
  calm.avg_queue_frac = 0.2;  // neither hot nor idle
  EXPECT_EQ(policy.Evaluate(hot), ElasticDecision::kHold);
  EXPECT_EQ(policy.Evaluate(calm), ElasticDecision::kHold);  // streak broken
  EXPECT_EQ(policy.Evaluate(hot), ElasticDecision::kHold);
  EXPECT_EQ(policy.Evaluate(hot), ElasticDecision::kGrow);
}

TEST(ElasticPolicyTest, RateSignalGrowsWhenEnabled) {
  ElasticConfig config;
  config.hysteresis = 1;
  config.cooldown = 0;
  config.max_shards = 8;
  config.grow_queue_frac = 0.99;                // queue signal out of the way
  config.grow_events_per_sec_per_shard = 1000;  // rate signal on
  ElasticPolicy policy(config);
  LoadSample sample;
  sample.shards = 2;
  sample.avg_queue_frac = 0.0;
  sample.events_per_sec_per_shard = 5000;
  EXPECT_EQ(policy.Evaluate(sample), ElasticDecision::kGrow);
}

// --- Elastic resize (the tentpole) -------------------------------------------

/// Feeds `trace` interleaved across the default input and a named stream
/// (even positions -> default, odd -> "belt"), resizing the runtime at the
/// given positions when `runtime` is non-null.
void FeedInterleaved(const std::vector<EventPtr>& trace, QueryEngine* engine,
                     ShardedRuntime* runtime,
                     const std::map<size_t, int>& resizes_at = {}) {
  for (size_t i = 0; i < trace.size(); ++i) {
    if (runtime != nullptr) {
      auto it = resizes_at.find(i);
      if (it != resizes_at.end()) {
        ASSERT_TRUE(runtime->Resize(it->second).ok()) << "at event " << i;
        ASSERT_EQ(runtime->shard_count(), it->second);
      }
    }
    const EventPtr& event = trace[i];
    if (i % 2 == 0) {
      if (engine != nullptr) engine->OnEvent(event);
      if (runtime != nullptr) runtime->OnEvent(event);
    } else {
      if (engine != nullptr) engine->OnStreamEvent("belt", event);
      if (runtime != nullptr) runtime->OnStreamEvent("belt", event);
    }
  }
}

/// Interleaved-stream workload for the resize golden tests: key-partitioned
/// patterns with middle and tail negation on both inputs, so deferred
/// releases and partial matches straddle every resize point.
const char* kResizeDefaultQueries[] = {
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 120",
    "EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
    "WHERE x.TagId = y.TagId WITHIN 30 RETURN x.TagId, x.Timestamp AS t",
    "EVENT SHELF_READING s WHERE s.AreaId = 2 RETURN s.TagId",
};
const char* kResizeNamedQueries[] = {
    "FROM belt EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
    "WHERE x.TagId = y.TagId WITHIN 40 RETURN x.TagId",
    "FROM belt EVENT SEQ(SHELF_READING x, EXIT_READING z) "
    "WHERE x.TagId = z.TagId WITHIN 80 RETURN x.TagId, z.Timestamp AS t",
    "FROM belt EVENT EXIT_READING e RETURN COUNT(*) AS exits",  // broadcast
};

template <typename Host>
void RegisterResizeWorkload(Host* host, std::vector<std::string>* lines) {
  for (size_t q = 0; q < std::size(kResizeDefaultQueries); ++q) {
    auto id = host->Register(kResizeDefaultQueries[q],
                             [lines, q](const OutputRecord& record) {
                               lines->push_back("d" + std::to_string(q) + "|" +
                                                record.ToString());
                             });
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  for (size_t q = 0; q < std::size(kResizeNamedQueries); ++q) {
    auto id = host->Register(kResizeNamedQueries[q],
                             [lines, q](const OutputRecord& record) {
                               lines->push_back("n" + std::to_string(q) + "|" +
                                                record.ToString());
                             });
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
}

TEST(ShardedRuntimeResizeTest, GoldenByteIdenticalAcrossGrowAndShrink) {
  // The acceptance gauntlet: grow 1->2->8, then shrink 8->3, mid-stream,
  // with interleaved default+named traffic and tail-negation deferrals
  // parked across every resize point. Output must equal the serial engine's
  // byte for byte.
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);

  std::vector<std::string> serial;
  {
    QueryEngine engine(&catalog);
    RegisterResizeWorkload(&engine, &serial);
    FeedInterleaved(trace, &engine, nullptr);
    engine.OnFlush();
  }
  ASSERT_GT(serial.size(), 100u);

  std::vector<std::string> sharded;
  RuntimeConfig config;
  config.shard_count = 1;
  config.merge_interval = 256;
  config.batch_size = 32;
  config.log_compact_min = 64;
  ShardedRuntime runtime(&catalog, config);
  RegisterResizeWorkload(&runtime, &sharded);
  FeedInterleaved(trace, nullptr, &runtime,
                  {{1000, 2}, {2000, 8}, {3000, 3}});
  runtime.OnFlush();
  EXPECT_EQ(serial, sharded);
  EXPECT_EQ(runtime.resize_count(), 3u);
  EXPECT_EQ(runtime.grow_count(), 2u);
  EXPECT_EQ(runtime.shrink_count(), 1u);
  EXPECT_GT(runtime.events_replayed(), 0u);
  auto stats = runtime.FullStats();
  EXPECT_EQ(stats.shard_count, 3);
  EXPECT_EQ(stats.resizes, 3u);
  EXPECT_EQ(stats.grows, 2u);
  EXPECT_EQ(stats.shrinks, 1u);
  EXPECT_EQ(stats.events_replayed, runtime.events_replayed());
  // Fleet engine counters are continuous across resizes (retired shard
  // engines' counters are carried over): 2000 default events to one shard
  // each + 2000 belt events to one shard each + 2000 belt events to the
  // broadcast worker (the COUNT query), plus each replayed event once.
  EXPECT_EQ(stats.engine.events_processed, 6000u + stats.events_replayed);
}

TEST(ShardedRuntimeResizeTest, DeferralStraddlingResizeReleasesExactlyOnce) {
  // Minimal deterministic straddle: one tail-negation deferral is parked,
  // the runtime resizes, and the release trigger arrives only afterwards.
  // The record must surface exactly once, in serial position.
  Catalog catalog = Catalog::RetailDemo();
  const char* kQuery =
      "EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 10 RETURN x.TagId";

  auto feed = [&](QueryEngine* engine, ShardedRuntime* runtime) {
    SequenceNumber seq = 0;
    auto emit = [&](const char* type, const std::string& tag, Timestamp ts) {
      EventBuilder b(catalog, type);
      auto e = b.Set("TagId", tag).Set("AreaId", 1).Build(ts, seq++);
      ASSERT_TRUE(e.ok());
      if (engine != nullptr) engine->OnEvent(e.value());
      if (runtime != nullptr) runtime->OnEvent(e.value());
    };
    emit("SHELF_READING", "TAG0", 1);  // deferral parked until ts > 11
    for (int i = 0; i < 8; ++i) {
      emit("SHELF_READING", "TAG" + std::to_string(1 + i), 2 + i);
    }
    if (runtime != nullptr) {
      ASSERT_TRUE(runtime->Resize(5).ok());  // deferral straddles this
    }
    emit("EXIT_READING", "TAG3", 10);  // suppresses TAG3's own deferral
    emit("SHELF_READING", "TAG9", 12);  // first event past TAG0's window
    emit("SHELF_READING", "TAG9", 13);
  };

  std::vector<std::string> serial;
  {
    QueryEngine engine(&catalog);
    ASSERT_TRUE(engine
                    .Register(kQuery,
                              [&serial](const OutputRecord& r) {
                                serial.push_back(r.ToString());
                              })
                    .ok());
    feed(&engine, nullptr);
    engine.OnFlush();
  }

  std::vector<std::string> sharded;
  RuntimeConfig config;
  config.shard_count = 2;
  config.batch_size = 1;
  config.merge_interval = 2;
  config.log_compact_min = 1;
  ShardedRuntime runtime(&catalog, config);
  ASSERT_TRUE(runtime
                  .Register(kQuery,
                            [&sharded](const OutputRecord& r) {
                              sharded.push_back(r.ToString());
                            })
                  .ok());
  feed(nullptr, &runtime);
  runtime.OnFlush();
  EXPECT_EQ(serial, sharded);
  EXPECT_EQ(runtime.resize_count(), 1u);
  EXPECT_GT(runtime.events_replayed(), 0u);
}

TEST(ShardedRuntimeResizeTest, RegistrationPointsSurviveReplay) {
  // A query registered mid-stream must not see pre-registration events
  // through the resize replay: the replay re-interleaves registrations at
  // their original dispatch positions.
  Catalog catalog = Catalog::RetailDemo();
  const char* kQuery =
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 100 RETURN x.TagId, x.Timestamp AS t";

  SequenceNumber seq = 0;
  auto make = [&](const char* type, const std::string& tag, Timestamp ts) {
    EventBuilder b(catalog, type);
    auto e = b.Set("TagId", tag).Set("AreaId", 1).Build(ts, seq++);
    EXPECT_TRUE(e.ok());
    return e.value();
  };

  std::vector<std::string> out;
  RuntimeConfig config;
  config.shard_count = 2;
  config.batch_size = 1;
  config.merge_interval = 2;
  ShardedRuntime runtime(&catalog, config);
  // A shelf reading dispatched BEFORE registration: the pattern's first
  // half exists in the stream but must stay invisible to the query.
  runtime.OnEvent(make("SHELF_READING", "TAG0", 1));
  ASSERT_TRUE(runtime
                  .Register(kQuery,
                            [&out](const OutputRecord& r) {
                              out.push_back(r.ToString());
                            })
                  .ok());
  // TAG1's shelf reading is post-registration; only it may match.
  runtime.OnEvent(make("SHELF_READING", "TAG1", 2));
  ASSERT_TRUE(runtime.Resize(4).ok());
  runtime.OnEvent(make("EXIT_READING", "TAG0", 3));  // no match: pre-reg x
  runtime.OnEvent(make("EXIT_READING", "TAG1", 4));  // match
  runtime.OnFlush();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].find("TAG1"), std::string::npos);
}

TEST(ShardedRuntimeResizeTest, UnboundedWindowRefusesResize) {
  Catalog catalog = Catalog::RetailDemo();
  RuntimeConfig config;
  config.shard_count = 2;
  ShardedRuntime runtime(&catalog, config);
  // Key-partitioned two-step pattern with no WITHIN: stateful, sharded,
  // unbounded in-flight window.
  auto id = runtime.Register(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId "
      "RETURN x.TagId",
      nullptr);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(runtime.IsSharded(id.value()));
  Status refused = runtime.Resize(4);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(runtime.shard_count(), 2);
  // Dropping the unbounded query restores resizability.
  ASSERT_TRUE(runtime.Unregister(id.value()).ok());
  EXPECT_TRUE(runtime.Resize(4).ok());
  EXPECT_EQ(runtime.shard_count(), 4);
}

TEST(ShardedRuntimeResizeTest, ReplayBufferStaysBounded) {
  // The in-flight window retained for replay must track the WITHIN span,
  // not the stream length.
  Catalog catalog = Catalog::RetailDemo();
  RuntimeConfig config;
  config.shard_count = 2;
  ShardedRuntime runtime(&catalog, config);
  ASSERT_TRUE(runtime
                  .Register(
                      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
                      "WHERE x.TagId = z.TagId WITHIN 20 RETURN x.TagId",
                      nullptr)
                  .ok());
  constexpr uint64_t kEvents = 20000;
  for (uint64_t i = 0; i < kEvents; ++i) {
    EventBuilder b(catalog, i % 5 == 4 ? "EXIT_READING" : "SHELF_READING");
    auto e = b.Set("TagId", "TAG" + std::to_string(i % 16))
                 .Set("AreaId", int64_t{1})
                 .Build(static_cast<Timestamp>(1 + i / 4),
                        static_cast<SequenceNumber>(i));
    ASSERT_TRUE(e.ok());
    runtime.OnEvent(e.value());
  }
  // Window of 20 ticks at 4 events/tick ~= 80 events + the boundary tick.
  EXPECT_LE(runtime.replay_buffer_len(), 200u);
  runtime.OnFlush();
}

TEST(ShardedRuntimeResizeTest, QuiescentStreamDoesNotPinOtherStreamsReplay) {
  // Per-stream retention: one stream going silent (its clock frozen, its
  // last events legitimately still in-window) must not block the pruning
  // of a busy stream's replay entries.
  Catalog catalog = Catalog::RetailDemo();
  RuntimeConfig config;
  config.shard_count = 2;
  ShardedRuntime runtime(&catalog, config);
  ASSERT_TRUE(runtime
                  .Register(
                      "FROM belt EVENT SEQ(SHELF_READING x, EXIT_READING z) "
                      "WHERE x.TagId = z.TagId WITHIN 50 RETURN x.TagId",
                      nullptr)
                  .ok());
  ASSERT_TRUE(runtime
                  .Register(
                      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
                      "WHERE x.TagId = z.TagId WITHIN 20 RETURN x.TagId",
                      nullptr)
                  .ok());
  SequenceNumber seq = 0;
  auto make = [&](Timestamp ts) {
    EventBuilder b(catalog, "SHELF_READING");
    auto e = b.Set("TagId", "TAG" + std::to_string(seq % 8))
                 .Set("AreaId", int64_t{1})
                 .Build(ts, seq++);
    EXPECT_TRUE(e.ok());
    return e.value();
  };
  // One belt event, then belt goes silent forever.
  runtime.OnStreamEvent("belt", make(1));
  // 30k default-input events: retention there is ~20 ticks of window.
  for (uint64_t i = 0; i < 30000; ++i) {
    runtime.OnEvent(make(static_cast<Timestamp>(1 + i / 4)));
  }
  // Bounded by the default stream's window (~80 events + slack) plus the
  // one parked belt entry — nowhere near the 30k fed.
  EXPECT_LE(runtime.replay_buffer_len(), 200u);
  // And the resize still works, belt entry included.
  ASSERT_TRUE(runtime.Resize(4).ok());
  runtime.OnFlush();
}

TEST(ShardedRuntimeElasticTest, BackpressureGrowsTheFleet) {
  // Integration: a deliberately slow per-event UDF makes the workers fall
  // behind, queues fill, and the autoscaler must grow the shard count —
  // without losing or duplicating a single output record.
  Catalog catalog = Catalog::RetailDemo();
  RuntimeConfig config;
  config.shard_count = 1;
  config.batch_size = 8;
  config.queue_capacity = 4;
  config.merge_interval = 64;
  config.elastic.enabled = true;
  config.elastic.min_shards = 1;
  config.elastic.max_shards = 4;
  config.elastic.check_interval = 128;
  config.elastic.grow_queue_frac = 0.25;
  config.elastic.shrink_queue_frac = 0.0;  // 0 disables shrinking (strict <)
  config.elastic.hysteresis = 1;
  config.elastic.cooldown = 1;
  ShardedRuntime runtime(
      &catalog, config, [](QueryEngine& engine) {
        (void)engine.functions()->Register(
            "slow_pass", 1, [](const std::vector<Value>& args) {
              std::this_thread::sleep_for(std::chrono::microseconds(100));
              return Result<Value>(args[0]);
            });
      });
  uint64_t outputs = 0;
  auto id = runtime.Register(
      "EVENT SHELF_READING s WHERE slow_pass(s.AreaId) >= 0 RETURN s.TagId",
      [&outputs](const OutputRecord&) { ++outputs; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(runtime.IsSharded(id.value()));

  constexpr uint64_t kEvents = 2000;
  for (uint64_t i = 0; i < kEvents; ++i) {
    EventBuilder b(catalog, "SHELF_READING");
    auto e = b.Set("TagId", "TAG" + std::to_string(i % 32))
                 .Set("AreaId", static_cast<int64_t>(i % 4))
                 .Build(static_cast<Timestamp>(1 + i / 8),
                        static_cast<SequenceNumber>(i));
    ASSERT_TRUE(e.ok());
    runtime.OnEvent(e.value());
  }
  runtime.OnFlush();
  EXPECT_EQ(outputs, kEvents);  // every shelf reading passes the predicate
  EXPECT_GT(runtime.shard_count(), 1);
  EXPECT_GE(runtime.grow_count(), 1u);
  EXPECT_GT(runtime.elastic_policy().checks(), 0u);
}

// --- Per-batch merge progress under interleaved streams ----------------------

TEST(ShardedRuntimeTest, PerBatchProgressDeliversIncrementallyAcrossStreams) {
  // With interleaved default+named traffic and only ONE clock broadcast in
  // the whole feed, incremental delivery must still happen: event batches
  // carry per-stream clocks and claim progress themselves. (Under the old
  // clock-cadence scheme the single mid-feed merge found no certified
  // progress and delivered nothing before flush.)
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);
  const char* kDefaultQuery =
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 80 RETURN x.TagId, z.Timestamp AS t";
  const char* kNamedQuery =
      "FROM belt EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 40 RETURN x.TagId";

  std::vector<std::string> serial;
  {
    QueryEngine engine(&catalog);
    ASSERT_TRUE(engine
                    .Register(kDefaultQuery,
                              [&serial](const OutputRecord& r) {
                                serial.push_back("d|" + r.ToString());
                              })
                    .ok());
    ASSERT_TRUE(engine
                    .Register(kNamedQuery,
                              [&serial](const OutputRecord& r) {
                                serial.push_back("n|" + r.ToString());
                              })
                    .ok());
    FeedInterleaved(trace, &engine, nullptr);
    engine.OnFlush();
  }
  ASSERT_GT(serial.size(), 20u);

  std::vector<std::string> sharded;
  size_t delivered_before_flush = 0;
  RuntimeConfig config;
  config.shard_count = 4;
  config.batch_size = 16;
  config.queue_capacity = 4;
  config.merge_interval = 3000;  // single merge point mid-feed
  ShardedRuntime runtime(&catalog, config);
  ASSERT_TRUE(runtime
                  .Register(kDefaultQuery,
                            [&sharded](const OutputRecord& r) {
                              sharded.push_back("d|" + r.ToString());
                            })
                  .ok());
  ASSERT_TRUE(runtime
                  .Register(kNamedQuery,
                            [&sharded](const OutputRecord& r) {
                              sharded.push_back("n|" + r.ToString());
                            })
                  .ok());
  FeedInterleaved(trace, nullptr, &runtime);
  delivered_before_flush = sharded.size();
  runtime.OnFlush();
  EXPECT_EQ(serial, sharded);
  EXPECT_GT(delivered_before_flush, 0u)
      << "per-batch progress claims did not advance the merge";
}

TEST(ShardedRuntimeTest, StatsAggregateAcrossWorkers) {
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);
  RuntimeConfig config;
  config.shard_count = 4;
  ShardedRuntime runtime(&catalog, config);
  uint64_t outputs = 0;
  auto id = runtime.Register(kGoldenQueries[0],
                             [&outputs](const OutputRecord&) { ++outputs; });
  ASSERT_TRUE(id.ok());
  for (const auto& event : trace) runtime.OnEvent(event);
  runtime.OnFlush();
  auto stats = runtime.Stats();
  EXPECT_EQ(stats.queries, 1u);
  // Every event lands on exactly one shard.
  EXPECT_EQ(stats.events_processed, trace.size());
  EXPECT_EQ(stats.outputs, outputs);
  EXPECT_GT(outputs, 0u);
  EXPECT_EQ(runtime.records_merged(), outputs);
  auto full = runtime.FullStats();
  EXPECT_EQ(full.engine.outputs, outputs);
  EXPECT_EQ(full.events_dispatched, trace.size());
  EXPECT_EQ(full.records_merged, outputs);
  EXPECT_EQ(full.merge_pending, 0u);
  EXPECT_EQ(full.dispatch_log_len, 0u);  // DrainFinal cleared the logs
  EXPECT_GE(full.peak_dispatch_log_len, 1u);
  EXPECT_EQ(full.stream_count, 1u);  // default input only
  std::string report = runtime.StatsReport();
  EXPECT_NE(report.find("runtime shards=4"), std::string::npos);
  EXPECT_NE(report.find("dispatch log:"), std::string::npos);
  EXPECT_NE(report.find("stream <default>:"), std::string::npos);
}

TEST(ShardedRuntimeTest, StatsReportCarriesAllDocumentedLines) {
  // The operations guide (docs/operations.md) walks users through this
  // report line by line; every documented line must actually appear, with
  // real numbers, after default + named-stream traffic and a resize.
  Catalog catalog = Catalog::RetailDemo();
  auto trace = GoldenTrace(catalog);
  RuntimeConfig config;
  config.shard_count = 2;
  config.merge_interval = 128;
  config.log_compact_min = 64;
  ShardedRuntime runtime(&catalog, config);
  ASSERT_TRUE(runtime.Register(kGoldenQueries[0], nullptr).ok());
  ASSERT_TRUE(runtime.Register(kGoldenQueries[3], nullptr).ok());  // broadcast
  ASSERT_TRUE(runtime
                  .Register(
                      "FROM belt EVENT SEQ(SHELF_READING x, EXIT_READING z) "
                      "WHERE x.TagId = z.TagId WITHIN 40 RETURN x.TagId",
                      nullptr)
                  .ok());
  FeedInterleaved(trace, nullptr, &runtime, {{2000, 4}});
  runtime.OnFlush();

  std::string report = runtime.StatsReport();
  // Header: shard count reflects the post-resize layout, query split shown.
  EXPECT_NE(report.find("runtime shards=4"), std::string::npos) << report;
  EXPECT_NE(report.find("(sharded=2 broadcast=1)"), std::string::npos) << report;
  // Dispatch-log health: length, peak, compaction counters (PR 2 lines).
  EXPECT_NE(report.find("dispatch log: len="), std::string::npos) << report;
  EXPECT_NE(report.find(" peak="), std::string::npos) << report;
  EXPECT_NE(report.find(" compactions="), std::string::npos) << report;
  EXPECT_NE(report.find("entries reclaimed)"), std::string::npos) << report;
  // Elastic / resize counters (this PR's lines).
  EXPECT_NE(report.find("resizes: total=1 up=1 down=0"), std::string::npos)
      << report;
  EXPECT_NE(report.find(" replayed="), std::string::npos) << report;
  EXPECT_NE(report.find("elastic off"), std::string::npos) << report;
  // One line per input stream with per-shard routing counts: the default
  // input and the named belt stream, each with a 4-slot shard vector.
  EXPECT_NE(report.find("stream <default>: events=2000"), std::string::npos)
      << report;
  EXPECT_NE(report.find("stream belt: events=2000"), std::string::npos)
      << report;
  size_t default_line = report.find("stream <default>:");
  ASSERT_NE(default_line, std::string::npos);
  size_t bracket = report.find("shards=[", default_line);
  ASSERT_NE(bracket, std::string::npos) << report;
  size_t close = report.find(']', bracket);
  ASSERT_NE(close, std::string::npos);
  std::string vec = report.substr(bracket + 8, close - bracket - 8);
  EXPECT_EQ(std::count(vec.begin(), vec.end(), ' '), 3) << vec;  // 4 shards
  // Per-worker engine lines: 4 shards + the broadcast worker.
  for (int s = 0; s < 4; ++s) {
    EXPECT_NE(report.find("shard " + std::to_string(s) + ": events="),
              std::string::npos)
        << report;
  }
  EXPECT_NE(report.find("broadcast: events="), std::string::npos) << report;
}

// --- Engine-level additions used by the runtime ------------------------------

TEST(QueryEngineRuntimeSupportTest, RegisterAsUsesExplicitIdAndDetectsClash) {
  Catalog catalog = Catalog::RetailDemo();
  QueryEngine engine(&catalog);
  auto id = engine.RegisterAs(42, "EVENT SHELF_READING s RETURN s.TagId",
                              nullptr);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 42);
  EXPECT_NE(engine.plan(42), nullptr);
  auto clash = engine.RegisterAs(42, "EVENT SHELF_READING s RETURN s.TagId",
                                 nullptr);
  EXPECT_FALSE(clash.ok());
  // Auto ids continue past the explicit one.
  auto next = engine.Register("EVENT SHELF_READING s RETURN s.TagId", nullptr);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 43);
}

TEST(QueryEngineRuntimeSupportTest, WatermarkReleasesTailNegation) {
  Catalog catalog = Catalog::RetailDemo();
  QueryEngine engine(&catalog);
  int outputs = 0;
  auto id = engine.Register(
      "EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 5 RETURN x.TagId",
      [&outputs](const OutputRecord&) { ++outputs; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EventBuilder b(catalog, "SHELF_READING");
  auto e = b.Set("TagId", "T").Set("AreaId", 0).Build(1, 0);
  ASSERT_TRUE(e.ok());
  engine.OnEvent(e.value());
  EXPECT_EQ(outputs, 0);
  engine.OnWatermark(6);  // window closes at 6; release needs now > 6
  EXPECT_EQ(outputs, 0);
  engine.OnWatermark(7);
  EXPECT_EQ(outputs, 1);
}

TEST(QueryEngineRuntimeSupportTest, StreamWatermarkReleasesNamedStreamDeferral) {
  Catalog catalog = Catalog::RetailDemo();
  QueryEngine engine(&catalog);
  int outputs = 0;
  auto id = engine.Register(
      "FROM belt EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 5 RETURN x.TagId",
      [&outputs](const OutputRecord&) { ++outputs; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EventBuilder b(catalog, "SHELF_READING");
  auto e = b.Set("TagId", "T").Set("AreaId", 0).Build(1, 0);
  ASSERT_TRUE(e.ok());
  engine.OnStreamEvent("belt", e.value());
  EXPECT_EQ(outputs, 0);
  // The default-input clock must not touch named-stream plans.
  engine.OnWatermark(100);
  EXPECT_EQ(outputs, 0);
  engine.OnStreamWatermark("BELT", 7);  // case-insensitive; 7 > 1 + 5
  EXPECT_EQ(outputs, 1);
}

TEST(QueryEngineRuntimeSupportTest, OutputRecordsCarrySerialOrderStamp) {
  Catalog catalog = Catalog::RetailDemo();
  QueryEngine engine(&catalog);
  std::vector<OutputRecord> records;
  auto immediate = engine.Register(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.TagId = z.TagId WITHIN 10",
      [&records](const OutputRecord& r) { records.push_back(r); });
  ASSERT_TRUE(immediate.ok());
  auto deferred = engine.Register(
      "EVENT SEQ(SHELF_READING x, !(EXIT_READING y)) "
      "WHERE x.TagId = y.TagId WITHIN 5 RETURN x.TagId",
      [&records](const OutputRecord& r) { records.push_back(r); });
  ASSERT_TRUE(deferred.ok());

  EventBuilder b1(catalog, "SHELF_READING");
  auto shelf = b1.Set("TagId", "A").Set("AreaId", 0).Build(2, 0);
  ASSERT_TRUE(shelf.ok());
  EventBuilder b2(catalog, "EXIT_READING");
  auto exit_event = b2.Set("TagId", "A").Set("AreaId", 3).Build(4, 1);
  ASSERT_TRUE(exit_event.ok());
  engine.OnEvent(shelf.value());
  engine.OnEvent(exit_event.value());
  engine.OnFlush();

  ASSERT_EQ(records.size(), 1u);  // tail negation suppressed by the exit
  EXPECT_FALSE(records[0].deferred);
  EXPECT_EQ(records[0].emit_ts, 4);
  EXPECT_EQ(records[0].emit_seq, 1u);
}

}  // namespace
}  // namespace sase
