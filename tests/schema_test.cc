#include "core/schema.h"

#include <gtest/gtest.h>

#include "core/catalog.h"

namespace sase {
namespace {

EventSchema MakeSchema() {
  return EventSchema("SHELF_READING", {{"TagId", ValueType::kString},
                                       {"AreaId", ValueType::kInt}});
}

TEST(SchemaTest, AttributeLookupIsCaseInsensitive) {
  EventSchema schema = MakeSchema();
  EXPECT_EQ(schema.FindAttribute("TagId"), 0);
  EXPECT_EQ(schema.FindAttribute("tagid"), 0);
  EXPECT_EQ(schema.FindAttribute("TAGID"), 0);
  EXPECT_EQ(schema.FindAttribute("AreaId"), 1);
  EXPECT_EQ(schema.FindAttribute("nosuch"), kInvalidAttr);
}

TEST(SchemaTest, VirtualTimestampAttribute) {
  EventSchema schema = MakeSchema();
  EXPECT_EQ(schema.FindAttribute("Timestamp"), kTimestampAttr);
  EXPECT_EQ(schema.FindAttribute("ts"), kTimestampAttr);
  EXPECT_EQ(schema.attribute_type(kTimestampAttr), ValueType::kInt);
  EXPECT_EQ(schema.attribute_name(kTimestampAttr), "Timestamp");
}

TEST(SchemaTest, AttributeTypesAndNames) {
  EventSchema schema = MakeSchema();
  EXPECT_EQ(schema.attribute_type(0), ValueType::kString);
  EXPECT_EQ(schema.attribute_type(1), ValueType::kInt);
  EXPECT_EQ(schema.attribute_name(1), "AreaId");
}

TEST(SchemaTest, ToStringListsAttributes) {
  EXPECT_EQ(MakeSchema().ToString(), "SHELF_READING(TagId STRING, AreaId INT)");
}

TEST(CatalogTest, RegisterAndFind) {
  Catalog catalog;
  auto id = catalog.RegisterType("FOO", {{"A", ValueType::kInt}});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(catalog.FindType("FOO").value(), id.value());
  EXPECT_EQ(catalog.FindType("foo").value(), id.value());  // case-insensitive
  EXPECT_TRUE(catalog.HasType("Foo"));
  EXPECT_FALSE(catalog.HasType("BAR"));
  EXPECT_FALSE(catalog.FindType("BAR").ok());
}

TEST(CatalogTest, DuplicateTypeRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterType("FOO", {{"A", ValueType::kInt}}).ok());
  auto dup = catalog.RegisterType("foo", {{"B", ValueType::kInt}});
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, DuplicateAttributeRejected) {
  Catalog catalog;
  auto result = catalog.RegisterType(
      "FOO", {{"A", ValueType::kInt}, {"a", ValueType::kString}});
  EXPECT_FALSE(result.ok());
}

TEST(CatalogTest, TimestampAttributeNameRejected) {
  Catalog catalog;
  EXPECT_FALSE(catalog.RegisterType("FOO", {{"Timestamp", ValueType::kInt}}).ok());
  EXPECT_FALSE(catalog.RegisterType("BAR", {{"ts", ValueType::kInt}}).ok());
}

TEST(CatalogTest, RetailDemoTypes) {
  Catalog catalog = Catalog::RetailDemo();
  for (const char* name : {"SHELF_READING", "COUNTER_READING", "EXIT_READING",
                           "BACKROOM_READING", "LOAD_READING", "UNLOAD_READING"}) {
    EXPECT_TRUE(catalog.HasType(name)) << name;
  }
  auto shelf = catalog.FindType("SHELF_READING");
  ASSERT_TRUE(shelf.ok());
  const EventSchema& schema = catalog.schema(shelf.value());
  EXPECT_NE(schema.FindAttribute("TagId"), kInvalidAttr);
  EXPECT_NE(schema.FindAttribute("AreaId"), kInvalidAttr);
  EXPECT_NE(schema.FindAttribute("ProductName"), kInvalidAttr);
  // Container events carry the extra attribute.
  auto load = catalog.FindType("LOAD_READING");
  EXPECT_NE(catalog.schema(load.value()).FindAttribute("ContainerId"),
            kInvalidAttr);
}

}  // namespace
}  // namespace sase
