#include "engine/sequence_scan.h"

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "test_util.h"

namespace sase {
namespace {

using testing::RunEngine;
using testing::StreamBuilder;

class SequenceScanTest : public ::testing::Test {
 protected:
  Catalog catalog_ = Catalog::RetailDemo();
};

TEST_F(SequenceScanTest, SimplePairSequence) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A")
        .Add("EXIT_READING", 2, "A")
        .Add("SHELF_READING", 3, "B")
        .Add("EXIT_READING", 4, "B");
  // Without predicates every (shelf, exit) pair with increasing time
  // matches: (1,2), (1,4), (3,4).
  auto out = RunEngine(catalog_, "EVENT SEQ(SHELF_READING x, EXIT_READING z)",
                       stream.events());
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(SequenceScanTest, StrictTemporalOrderExcludesTies) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 5, "A").Add("EXIT_READING", 5, "A");
  auto out = RunEngine(catalog_, "EVENT SEQ(SHELF_READING x, EXIT_READING z)",
                       stream.events());
  EXPECT_TRUE(out.empty());  // same timestamp -> no sequence
}

TEST_F(SequenceScanTest, AllMatchesEnumerated) {
  // Two shelf events before two exits: 2 x 2 = 4 matches.
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A")
        .Add("SHELF_READING", 2, "B")
        .Add("EXIT_READING", 3, "C")
        .Add("EXIT_READING", 4, "D");
  auto out = RunEngine(catalog_, "EVENT SEQ(SHELF_READING x, EXIT_READING z)",
                       stream.events());
  EXPECT_EQ(out.size(), 4u);
}

TEST_F(SequenceScanTest, WindowExcludesDistantPairs) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A")
        .Add("EXIT_READING", 100, "A");
  auto within = RunEngine(catalog_,
                          "EVENT SEQ(SHELF_READING x, EXIT_READING z) WITHIN 99",
                          stream.events());
  EXPECT_EQ(within.size(), 1u);  // 100 - 1 = 99 <= 99
  auto outside = RunEngine(
      catalog_, "EVENT SEQ(SHELF_READING x, EXIT_READING z) WITHIN 98",
      stream.events());
  EXPECT_TRUE(outside.empty());
}

TEST_F(SequenceScanTest, EdgeFilterPrunesNonMatching) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A", /*area=*/1)
        .Add("SHELF_READING", 2, "B", /*area=*/2)
        .Add("EXIT_READING", 3, "C", /*area=*/9);
  auto out = RunEngine(
      catalog_,
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.AreaId = 1",
      stream.events());
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(SequenceScanTest, EqualityPredicateViaPartitioning) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A")
        .Add("SHELF_READING", 2, "B")
        .Add("EXIT_READING", 3, "A")
        .Add("EXIT_READING", 4, "B");
  auto out = RunEngine(
      catalog_,
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId",
      stream.events());
  EXPECT_EQ(out.size(), 2u);  // (A,A) and (B,B) only
}

TEST_F(SequenceScanTest, PartitioningOnOffEquivalence) {
  StreamBuilder stream(&catalog_);
  for (int i = 0; i < 40; ++i) {
    stream.Add(i % 2 == 0 ? "SHELF_READING" : "EXIT_READING", i + 1,
               "T" + std::to_string(i % 5));
  }
  const std::string query =
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId "
      "WITHIN 20";
  PlanOptions partitioned;
  PlanOptions flat;
  flat.use_partitioning = false;
  EXPECT_EQ(RunEngine(catalog_, query, stream.events(), partitioned),
            RunEngine(catalog_, query, stream.events(), flat));
}

TEST_F(SequenceScanTest, WindowPushdownOnOffEquivalence) {
  StreamBuilder stream(&catalog_);
  for (int i = 0; i < 60; ++i) {
    stream.Add(i % 3 == 0 ? "SHELF_READING"
                          : (i % 3 == 1 ? "COUNTER_READING" : "EXIT_READING"),
               i + 1, "T" + std::to_string(i % 4));
  }
  const std::string query =
      "EVENT SEQ(SHELF_READING x, COUNTER_READING y, EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 15";
  PlanOptions pushed;
  PlanOptions unpushed;
  unpushed.push_window = false;
  EXPECT_EQ(RunEngine(catalog_, query, stream.events(), pushed),
            RunEngine(catalog_, query, stream.events(), unpushed));
}

TEST_F(SequenceScanTest, PredicatePushdownOnOffEquivalence) {
  StreamBuilder stream(&catalog_);
  for (int i = 0; i < 50; ++i) {
    stream.Add(i % 2 == 0 ? "SHELF_READING" : "EXIT_READING", i + 1,
               "T" + std::to_string(i % 3), /*area=*/i % 4);
  }
  const std::string query =
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
      "WHERE x.AreaId < 2 AND z.AreaId > 0 WITHIN 25";
  PlanOptions pushed;
  PlanOptions unpushed;
  unpushed.push_predicates = false;
  EXPECT_EQ(RunEngine(catalog_, query, stream.events(), pushed),
            RunEngine(catalog_, query, stream.events(), unpushed));
}

TEST_F(SequenceScanTest, SingleComponentPattern) {
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A", 1)
        .Add("SHELF_READING", 2, "B", 2)
        .Add("EXIT_READING", 3, "C", 3);
  auto out = RunEngine(catalog_, "EVENT SHELF_READING x WHERE x.AreaId = 2",
                       stream.events());
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(SequenceScanTest, StacksPrunedUnderWindow) {
  // Direct operator-level check of the window pushdown: instances older
  // than (now - W) are discarded.
  auto parsed = Parser::Parse(
      "EVENT SEQ(SHELF_READING x, EXIT_READING z) WITHIN 10");
  ASSERT_TRUE(parsed.ok());
  Analyzer analyzer(&catalog_, TimeConfig{});
  auto analyzed = analyzer.Analyze(std::move(parsed).value());
  ASSERT_TRUE(analyzed.ok());
  AnalyzedQuery query = std::move(analyzed).value();
  Nfa nfa = Nfa::Compile(query, true, true);
  FunctionRegistry functions;
  SequenceScan scan(&nfa, query.window_ticks, &functions, query.slot_count());

  StreamBuilder stream(&catalog_);
  for (int i = 0; i < 100; ++i) {
    stream.Add("SHELF_READING", i + 1, "T");
  }
  for (const auto& event : stream.events()) scan.OnEvent(event);
  EXPECT_GT(scan.stats().instances_pruned, 0u);
  // Only events within the last 10 ticks may remain alive.
  EXPECT_LE(scan.stats().instances_alive, 12u);
}

TEST_F(SequenceScanTest, UnboundedWithoutWindowKeepsAllInstances) {
  auto parsed = Parser::Parse("EVENT SEQ(SHELF_READING x, EXIT_READING z)");
  ASSERT_TRUE(parsed.ok());
  Analyzer analyzer(&catalog_, TimeConfig{});
  AnalyzedQuery query = analyzer.Analyze(std::move(parsed).value()).value();
  Nfa nfa = Nfa::Compile(query, true, true);
  FunctionRegistry functions;
  SequenceScan scan(&nfa, -1, &functions, query.slot_count());
  StreamBuilder stream(&catalog_);
  for (int i = 0; i < 50; ++i) stream.Add("SHELF_READING", i + 1, "T");
  for (const auto& event : stream.events()) scan.OnEvent(event);
  EXPECT_EQ(scan.stats().instances_alive, 50u);
  EXPECT_EQ(scan.stats().instances_pruned, 0u);
}

TEST_F(SequenceScanTest, StatsCountMatches) {
  auto parsed = Parser::Parse("EVENT SEQ(SHELF_READING x, EXIT_READING z)");
  Analyzer analyzer(&catalog_, TimeConfig{});
  AnalyzedQuery query = analyzer.Analyze(std::move(parsed).value()).value();
  Nfa nfa = Nfa::Compile(query, true, true);
  FunctionRegistry functions;
  SequenceScan scan(&nfa, -1, &functions, query.slot_count());
  StreamBuilder stream(&catalog_);
  stream.Add("SHELF_READING", 1, "A").Add("EXIT_READING", 2, "A");
  for (const auto& event : stream.events()) scan.OnEvent(event);
  EXPECT_EQ(scan.stats().events_seen, 2u);
  EXPECT_EQ(scan.stats().matches_emitted, 1u);
  EXPECT_EQ(scan.matches_out(), 1u);
}

}  // namespace
}  // namespace sase
