#include "db/sql_executor.h"

#include <gtest/gtest.h>

#include "db/sql_parser.h"

namespace sase {
namespace db {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        executor_
            .Execute("CREATE TABLE items (TagId STRING, AreaId INT, Price DOUBLE)")
            .ok());
    ASSERT_TRUE(
        executor_
            .Execute("INSERT INTO items VALUES ('T1', 1, 9.99)").ok());
    ASSERT_TRUE(
        executor_
            .Execute("INSERT INTO items VALUES ('T2', 2, 5.0)").ok());
    ASSERT_TRUE(
        executor_
            .Execute("INSERT INTO items (TagId, AreaId) VALUES ('T3', 1)").ok());
  }

  ResultSet MustExecute(const std::string& sql) {
    auto result = executor_.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return std::move(result).value();
  }

  Database database_;
  SqlExecutor executor_{&database_};
};

TEST_F(SqlTest, SelectStar) {
  ResultSet result = MustExecute("SELECT * FROM items");
  EXPECT_EQ(result.columns.size(), 3u);
  EXPECT_EQ(result.rows.size(), 3u);
}

TEST_F(SqlTest, SelectProjection) {
  ResultSet result = MustExecute("SELECT TagId FROM items WHERE AreaId = 1");
  ASSERT_EQ(result.columns, (std::vector<std::string>{"TagId"}));
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][0].AsString(), "T1");
  EXPECT_EQ(result.rows[1][0].AsString(), "T3");
}

TEST_F(SqlTest, WhereOperators) {
  EXPECT_EQ(MustExecute("SELECT * FROM items WHERE AreaId != 1").rows.size(), 1u);
  EXPECT_EQ(MustExecute("SELECT * FROM items WHERE Price > 5.0").rows.size(), 1u);
  EXPECT_EQ(MustExecute("SELECT * FROM items WHERE Price >= 5.0").rows.size(), 2u);
  EXPECT_EQ(MustExecute("SELECT * FROM items WHERE AreaId < 2").rows.size(), 2u);
  EXPECT_EQ(MustExecute("SELECT * FROM items WHERE AreaId <= 2").rows.size(), 3u);
  EXPECT_EQ(
      MustExecute("SELECT * FROM items WHERE AreaId = 1 AND Price > 1.0").rows.size(),
      1u);
}

TEST_F(SqlTest, IsNullConditions) {
  EXPECT_EQ(MustExecute("SELECT * FROM items WHERE Price IS NULL").rows.size(), 1u);
  EXPECT_EQ(MustExecute("SELECT * FROM items WHERE Price IS NOT NULL").rows.size(),
            2u);
}

TEST_F(SqlTest, OrderByAndLimit) {
  ResultSet asc = MustExecute("SELECT TagId FROM items ORDER BY Price ASC");
  // NULL price sorts via Compare failure -> stable order: T3 has NULL.
  ResultSet desc =
      MustExecute("SELECT TagId FROM items WHERE Price IS NOT NULL "
                  "ORDER BY Price DESC LIMIT 1");
  ASSERT_EQ(desc.rows.size(), 1u);
  EXPECT_EQ(desc.rows[0][0].AsString(), "T1");
  EXPECT_EQ(asc.rows.size(), 3u);
}

TEST_F(SqlTest, UpdateWithWhere) {
  ResultSet result = MustExecute("UPDATE items SET AreaId = 9 WHERE TagId = 'T1'");
  EXPECT_EQ(result.affected, 1);
  EXPECT_EQ(MustExecute("SELECT * FROM items WHERE AreaId = 9").rows.size(), 1u);
}

TEST_F(SqlTest, UpdateWithoutWhereTouchesAll) {
  ResultSet result = MustExecute("UPDATE items SET AreaId = 7");
  EXPECT_EQ(result.affected, 3);
}

TEST_F(SqlTest, DeleteWithWhere) {
  EXPECT_EQ(MustExecute("DELETE FROM items WHERE AreaId = 1").affected, 2);
  EXPECT_EQ(MustExecute("SELECT * FROM items").rows.size(), 1u);
}

TEST_F(SqlTest, IndexedLookupUsed) {
  ASSERT_TRUE(database_.GetTable("items")->CreateIndex("TagId").ok());
  uint64_t before = executor_.index_lookups();
  MustExecute("SELECT * FROM items WHERE TagId = 'T2'");
  EXPECT_EQ(executor_.index_lookups(), before + 1);
}

TEST_F(SqlTest, NegativeNumberLiterals) {
  MustExecute("INSERT INTO items VALUES ('T4', -5, -1.5)");
  EXPECT_EQ(MustExecute("SELECT * FROM items WHERE AreaId = -5").rows.size(), 1u);
}

TEST_F(SqlTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(executor_.Execute("SELECT * FROM missing").ok());
  EXPECT_FALSE(executor_.Execute("SELECT nosuch FROM items").ok());
  EXPECT_FALSE(executor_.Execute("UPDATE items SET nosuch = 1").ok());
  EXPECT_FALSE(executor_.Execute("BOGUS STATEMENT").ok());
  EXPECT_FALSE(executor_.Execute("SELECT * FROM items WHERE").ok());
  EXPECT_FALSE(executor_.Execute("INSERT INTO items VALUES ('x')").ok());
  EXPECT_FALSE(
      executor_.Execute("CREATE TABLE bad (col FANCYTYPE)").ok());
  EXPECT_FALSE(executor_.Execute("SELECT * FROM items LIMIT").ok());
}

TEST_F(SqlTest, ResultSetRendering) {
  ResultSet result = MustExecute("SELECT TagId, AreaId FROM items WHERE TagId = 'T1'");
  std::string text = result.ToString();
  EXPECT_NE(text.find("TagId | AreaId"), std::string::npos);
  EXPECT_NE(text.find("T1 | 1"), std::string::npos);
  EXPECT_NE(text.find("(1 rows)"), std::string::npos);

  ResultSet update = MustExecute("UPDATE items SET AreaId = 2 WHERE TagId = 'T1'");
  EXPECT_NE(update.ToString().find("1 rows affected"), std::string::npos);
}

TEST(SqlParserTest, ParsesSelectShape) {
  auto statement = SqlParser::Parse(
      "SELECT a, b FROM t WHERE x = 1 AND y != 'z' ORDER BY a DESC LIMIT 10");
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  const auto& select = std::get<SelectStatement>(statement.value());
  EXPECT_EQ(select.columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(select.table, "t");
  ASSERT_EQ(select.where.size(), 2u);
  EXPECT_EQ(select.where[0].op, SqlOp::kEq);
  EXPECT_EQ(select.where[1].op, SqlOp::kNeq);
  EXPECT_EQ(select.order_by, "a");
  EXPECT_TRUE(select.descending);
  EXPECT_EQ(select.limit, 10);
}

TEST(SqlParserTest, KeywordsCaseInsensitive) {
  EXPECT_TRUE(SqlParser::Parse("select * from t where a = 1 order by a asc").ok());
  EXPECT_TRUE(SqlParser::Parse("Insert Into t Values (1)").ok());
  EXPECT_TRUE(SqlParser::Parse("delete from t").ok());
}

}  // namespace
}  // namespace db
}  // namespace sase
