#include "core/stream.h"

#include <gtest/gtest.h>

namespace sase {
namespace {

class StreamTest : public ::testing::Test {
 protected:
  Catalog catalog_ = Catalog::RetailDemo();
  EventTypeId shelf_ = catalog_.FindType("SHELF_READING").value();
};

TEST_F(StreamTest, SourceAssignsMonotoneSequenceNumbers) {
  VectorSink sink;
  StreamSource source(&sink);
  source.Publish(shelf_, 1, {Value("A"), Value(0), Value()});
  source.Publish(shelf_, 2, {Value("B"), Value(0), Value()});
  source.Publish(shelf_, 2, {Value("C"), Value(0), Value()});
  ASSERT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.events()[0]->seq(), 0u);
  EXPECT_EQ(sink.events()[1]->seq(), 1u);
  EXPECT_EQ(sink.events()[2]->seq(), 2u);
}

TEST_F(StreamTest, SourceClampsRegressingTimestamps) {
  VectorSink sink;
  StreamSource source(&sink);
  source.Publish(shelf_, 10, {Value("A"), Value(0), Value()});
  source.Publish(shelf_, 5, {Value("B"), Value(0), Value()});  // regresses
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[1]->timestamp(), 10);
  EXPECT_EQ(source.clamped_count(), 1);
}

TEST_F(StreamTest, SourceFlushPropagates) {
  VectorSink sink;
  StreamSource source(&sink);
  EXPECT_FALSE(sink.flushed());
  source.Flush();
  EXPECT_TRUE(sink.flushed());
}

TEST_F(StreamTest, BusFansOutInSubscriptionOrder) {
  StreamBus bus;
  std::vector<int> order;
  CallbackSink first([&](const EventPtr&) { order.push_back(1); });
  CallbackSink second([&](const EventPtr&) { order.push_back(2); });
  bus.Subscribe(&first);
  bus.Subscribe(&second);
  StreamSource source(&bus);
  source.Publish(shelf_, 1, {Value("A"), Value(0), Value()});
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(bus.subscriber_count(), 2u);
}

TEST_F(StreamTest, BusIgnoresDuplicateSubscription) {
  StreamBus bus;
  int delivered = 0;
  CallbackSink sink([&](const EventPtr&) { ++delivered; });
  bus.Subscribe(&sink);
  bus.Subscribe(&sink);  // duplicate: must not double-deliver
  EXPECT_EQ(bus.subscriber_count(), 1u);
  StreamSource source(&bus);
  source.Publish(shelf_, 1, {Value("A"), Value(0), Value()});
  EXPECT_EQ(delivered, 1);
}

TEST_F(StreamTest, BusUnsubscribeStopsDeliveryAndKeepsOrder) {
  StreamBus bus;
  std::vector<int> order;
  CallbackSink first([&](const EventPtr&) { order.push_back(1); });
  CallbackSink second([&](const EventPtr&) { order.push_back(2); });
  CallbackSink third([&](const EventPtr&) { order.push_back(3); });
  bus.Subscribe(&first);
  bus.Subscribe(&second);
  bus.Subscribe(&third);
  bus.Unsubscribe(&second);
  EXPECT_EQ(bus.subscriber_count(), 2u);
  StreamSource source(&bus);
  source.Publish(shelf_, 1, {Value("A"), Value(0), Value()});
  EXPECT_EQ(order, (std::vector<int>{1, 3}));

  // Unknown sinks are ignored; re-subscribing after unsubscribe works.
  bus.Unsubscribe(&second);
  bus.Subscribe(&second);
  order.clear();
  source.Publish(shelf_, 2, {Value("B"), Value(0), Value()});
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST_F(StreamTest, PublishPrebuiltEventReassignsSeq) {
  VectorSink sink;
  StreamSource source(&sink);
  auto event = std::make_shared<Event>(
      shelf_, 7, /*seq=*/999, std::vector<Value>{Value("A"), Value(1), Value()});
  source.Publish(event);
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0]->seq(), 0u);
  EXPECT_EQ(sink.events()[0]->timestamp(), 7);
  EXPECT_EQ(sink.events()[0]->attribute(0).AsString(), "A");
}

TEST_F(StreamTest, VectorSinkClear) {
  VectorSink sink;
  StreamSource source(&sink);
  source.Publish(shelf_, 1, {Value("A"), Value(0), Value()});
  source.Flush();
  sink.Clear();
  EXPECT_TRUE(sink.events().empty());
  EXPECT_FALSE(sink.flushed());
}

}  // namespace
}  // namespace sase
