// Integration tests for the full Figure-1 stack: simulator -> cleaning ->
// event bus -> complex event processor + event database + UI channels.
// These reproduce §4's demonstration scenario end to end.

#include "system/sase_system.h"

#include <gtest/gtest.h>

#include "rfid/tag.h"

namespace sase {
namespace {

constexpr const char* kShopliftingQuery =
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
    "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 12 hours "
    "RETURN x.TagId, x.ProductName, z.AreaId, _retrieveLocation(z.AreaId)";

constexpr const char* kLocationArchivingRule =
    "EVENT ANY(SHELF_READING s) "
    "RETURN _updateLocation(s.TagId, s.AreaId, s.Timestamp)";

class SystemTest : public ::testing::Test {
 protected:
  static SystemConfig PerfectConfig() {
    SystemConfig config;
    config.noise = NoiseModel::Perfect();
    config.raw_units_per_tick = 1000;
    return config;
  }

  SystemTest() : system_(StoreLayout::RetailDemo(), PerfectConfig()) {}

  void AddDemoProducts() {
    system_.AddProduct({MakeEpc(1), "Razor", "2026-12-01", true});
    system_.AddProduct({MakeEpc(2), "Soap", "2027-01-01", true});
    system_.AddProduct({MakeEpc(3), "Shampoo", "2026-09-01", true});
  }

  SaseSystem system_;
};

TEST_F(SystemTest, ShopliftingScenarioRaisesAlert) {
  AddDemoProducts();
  std::vector<OutputRecord> alerts;
  ASSERT_TRUE(system_
                  .RegisterMonitoringQuery(
                      "shoplifting", kShopliftingQuery,
                      [&alerts](const OutputRecord& r) { alerts.push_back(r); })
                  .ok());

  const StoreLayout& layout = system_.simulator().layout();
  int shelf = layout.AreasByKind(AreaKind::kShelf)[0];
  int counter = layout.FindAreaByKind(AreaKind::kCounter);
  int exit = layout.FindAreaByKind(AreaKind::kExit);

  ScenarioScripter scripter(&system_.simulator());
  scripter.Shoplift(MakeEpc(1), shelf, exit, /*start=*/1);              // thief
  scripter.Purchase(MakeEpc(2), shelf, counter, exit, /*start=*/2);    // honest
  system_.RunUntil(20);
  system_.Flush();

  ASSERT_GE(alerts.size(), 1u);
  for (const auto& alert : alerts) {
    EXPECT_EQ(alert.Get("x.TagId").AsString(), MakeEpc(1));  // only the thief
    EXPECT_EQ(alert.Get("x.ProductName").AsString(), "Razor");
    EXPECT_EQ(alert.Get("z.AreaId").AsInt(), exit);
    // The hybrid DB lookup resolved the exit's description.
    EXPECT_EQ(alert.Get("_retrieveLocation(z.AreaId)").AsString(), "Store Exit");
  }

  // Figure 3's windows carry the intermediate results.
  EXPECT_GT(system_.reports().Channel(ReportBoard::kCleaningOutput).size(), 0u);
  EXPECT_TRUE(system_.reports().Channel(ReportBoard::kMessageResults)
                  .Contains("shoplifting"));
  EXPECT_TRUE(system_.reports().Channel(ReportBoard::kPresentQueries)
                  .Contains("SHELF_READING"));
  EXPECT_GT(system_.reports().Channel(ReportBoard::kStreamOutput).size(), 0u);
}

TEST_F(SystemTest, MisplacedInventoryQuery) {
  AddDemoProducts();
  const StoreLayout& layout = system_.simulator().layout();
  auto shelves = layout.AreasByKind(AreaKind::kShelf);
  ASSERT_EQ(shelves.size(), 2u);

  // Shelf 1 stocks Razors; a razor appearing on shelf 2 is misplaced.
  std::vector<OutputRecord> alerts;
  std::string query =
      "EVENT SHELF_READING s WHERE s.ProductName = 'Razor' AND s.AreaId = " +
      std::to_string(shelves[1]) + " RETURN s.TagId, s.AreaId";
  ASSERT_TRUE(system_
                  .RegisterMonitoringQuery(
                      "misplaced", query,
                      [&alerts](const OutputRecord& r) { alerts.push_back(r); })
                  .ok());

  ScenarioScripter scripter(&system_.simulator());
  scripter.Misplace(MakeEpc(1), shelves[0], shelves[1], /*start=*/1);
  scripter.Restock(MakeEpc(2), shelves[0], /*start=*/1);  // soap: fine
  system_.RunUntil(10);
  system_.Flush();

  ASSERT_GE(alerts.size(), 1u);
  for (const auto& alert : alerts) {
    EXPECT_EQ(alert.Get("s.TagId").AsString(), MakeEpc(1));
    EXPECT_EQ(alert.Get("s.AreaId").AsInt(), shelves[1]);
  }
}

TEST_F(SystemTest, ArchivingRuleKeepsDatabaseCurrent) {
  AddDemoProducts();
  ASSERT_TRUE(
      system_.RegisterArchivingRule("location-update", kLocationArchivingRule)
          .ok());

  const StoreLayout& layout = system_.simulator().layout();
  auto shelves = layout.AreasByKind(AreaKind::kShelf);
  ScenarioScripter scripter(&system_.simulator());
  scripter.Misplace(MakeEpc(1), shelves[0], shelves[1], /*start=*/1, /*dwell=*/3);
  system_.RunUntil(10);
  system_.Flush();

  // "The live updates ensure that all Event Database queries ... are
  // executed over an up-to-date state of the retail store."
  auto trace = system_.track_trace();
  auto current = trace.CurrentLocation(MakeEpc(1));
  ASSERT_TRUE(current.has_value());
  EXPECT_EQ(current->where.AsInt(), shelves[1]);
  auto history = trace.LocationHistory(MakeEpc(1));
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].where.AsInt(), shelves[0]);
}

TEST_F(SystemTest, AdHocSqlOverEventDatabase) {
  AddDemoProducts();
  ASSERT_TRUE(
      system_.RegisterArchivingRule("location-update", kLocationArchivingRule)
          .ok());
  ScenarioScripter scripter(&system_.simulator());
  scripter.Restock(MakeEpc(1), 0, 1);
  system_.RunUntil(5);
  system_.Flush();

  auto result = system_.ExecuteSql(
      "SELECT TagId, AreaId FROM location_history WHERE TimeOut IS NULL");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0][0].AsString(), MakeEpc(1));

  // The Database Report channel logged statement and result (Figure 3).
  EXPECT_TRUE(system_.reports().Channel(ReportBoard::kDatabaseReport)
                  .Contains("SELECT TagId"));

  // The raw event archive is queryable too.
  auto events = system_.ExecuteSql("SELECT * FROM events LIMIT 3");
  ASSERT_TRUE(events.ok());
  EXPECT_GT(events.value().rows.size(), 0u);
}

TEST_F(SystemTest, OnsMetadataFlowsIntoEvents) {
  AddDemoProducts();
  std::vector<OutputRecord> records;
  ASSERT_TRUE(system_
                  .RegisterMonitoringQuery(
                      "products", "EVENT SHELF_READING s RETURN s.ProductName",
                      [&records](const OutputRecord& r) { records.push_back(r); })
                  .ok());
  system_.simulator().Place(MakeEpc(3), 0);
  system_.RunUntil(2);
  system_.Flush();
  ASSERT_GE(records.size(), 1u);
  EXPECT_EQ(records[0].Get("s.ProductName").AsString(), "Shampoo");
}

TEST_F(SystemTest, NoisyReadersStillDetectShoplifting) {
  // With realistic reader noise the cleaning layer must repair the stream
  // well enough for detection to go through.
  SystemConfig config;
  config.noise = NoiseModel{.miss_rate = 0.2,
                            .truncation_rate = 0.05,
                            .spurious_rate = 0.05,
                            .duplicate_rate = 0.1};
  config.seed = 12345;
  config.raw_units_per_tick = 1000;
  config.smoothing_window_ticks = 3;
  SaseSystem noisy(StoreLayout::RetailDemo(), config);
  noisy.AddProduct({MakeEpc(1), "Razor", "", true});
  std::vector<OutputRecord> alerts;
  ASSERT_TRUE(noisy
                  .RegisterMonitoringQuery(
                      "shoplifting", kShopliftingQuery,
                      [&alerts](const OutputRecord& r) { alerts.push_back(r); })
                  .ok());

  ScenarioScripter scripter(&noisy.simulator());
  // Long dwells so the lossy readers observe every stage.
  scripter.Shoplift(MakeEpc(1), 0, 3, /*start=*/1, /*shelf_dwell=*/10,
                    /*exit_dwell=*/6);
  noisy.RunUntil(30);
  noisy.Flush();
  EXPECT_GE(alerts.size(), 1u);
  // Cleaning stats show the noise was actually exercised and repaired.
  EXPECT_GT(noisy.cleaning().anomaly_filter().stats().dropped_spurious +
                noisy.cleaning().anomaly_filter().stats().dropped_truncated,
            0u);
  EXPECT_GT(noisy.cleaning().deduplication().stats().dropped_duplicates, 0u);
}

TEST_F(SystemTest, ContainmentRuleTracksLoadingZone) {
  // Warehouse-style layout: loading zone feeds LOAD_READING events whose
  // ContainerId comes from the container tag sharing the read range.
  StoreLayout layout;
  int loading = layout.AddArea("Dock", AreaKind::kLoadingZone);
  int backroom = layout.AddArea("Backroom", AreaKind::kBackroom);
  int shelf = layout.AddArea("Shelf", AreaKind::kShelf);
  for (int area : {loading, backroom, shelf}) layout.AddReader(area);
  SaseSystem warehouse(std::move(layout), PerfectConfig());

  ASSERT_TRUE(warehouse
                  .RegisterArchivingRule(
                      "containment",
                      "EVENT ANY(LOAD_READING l) "
                      "RETURN _updateContainment(l.TagId, l.ContainerId, "
                      "l.Timestamp)")
                  .ok());
  ASSERT_TRUE(warehouse
                  .RegisterArchivingRule(
                      "location",
                      "EVENT ANY(SHELF_READING s) "
                      "RETURN _updateLocation(s.TagId, s.AreaId, s.Timestamp)")
                  .ok());
  // Unloading half: the first backroom reading closes the containment.
  ASSERT_TRUE(warehouse
                  .RegisterArchivingRule(
                      "containment-close",
                      "EVENT ANY(BACKROOM_READING b) "
                      "RETURN _closeContainment(b.TagId, b.Timestamp)")
                  .ok());

  warehouse.AddProduct({MakeEpc(1), "Crate", "", true});
  ScenarioScripter scripter(&warehouse.simulator());
  scripter.WarehouseArrival(MakeEpc(1), "CONT7", loading, backroom, shelf,
                            /*start=*/1, /*stage_dwell=*/3);
  warehouse.RunUntil(12);
  warehouse.Flush();

  auto trace = warehouse.track_trace();
  auto containment = trace.ContainmentHistory(MakeEpc(1));
  ASSERT_EQ(containment.size(), 1u);
  EXPECT_EQ(containment[0].where.AsString(), "CONT7");
  EXPECT_FALSE(containment[0].current());  // closed at the backroom
  EXPECT_FALSE(trace.CurrentContainment(MakeEpc(1)).has_value());
  auto location = trace.CurrentLocation(MakeEpc(1));
  ASSERT_TRUE(location.has_value());
  EXPECT_EQ(location->where.AsInt(), shelf);
  // The rule fires once per LOAD_READING (one per dwell tick); the history
  // stays deduplicated at one row.
  EXPECT_EQ(warehouse.archiver().containment_updates(), 3u);
}

TEST_F(SystemTest, ShardedSystemMatchesSerialAlerts) {
  // The same shoplifting scenario on a 4-shard system: the pure-stream query
  // scales out across shard workers, the hybrid DB query stays serial, and
  // both report exactly what the serial system reports.
  constexpr const char* kPureStreamQuery =
      "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) "
      "WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 12 hours "
      "RETURN x.TagId, x.ProductName, z.AreaId";

  auto run = [&](int shard_count) {
    SystemConfig config = PerfectConfig();
    config.shard_count = shard_count;
    SaseSystem system(StoreLayout::RetailDemo(), config);
    system.AddProduct({MakeEpc(1), "Razor", "2026-12-01", true});
    system.AddProduct({MakeEpc(2), "Soap", "2027-01-01", true});
    std::vector<std::string> lines;
    EXPECT_TRUE(system
                    .RegisterMonitoringQuery(
                        "shoplifting", kPureStreamQuery,
                        [&lines](const OutputRecord& r) {
                          lines.push_back(r.ToString());
                        })
                    .ok());
    EXPECT_TRUE(system
                    .RegisterMonitoringQuery("hybrid", kShopliftingQuery,
                                             [&lines](const OutputRecord& r) {
                                               lines.push_back(r.ToString());
                                             })
                    .ok());
    const StoreLayout& layout = system.simulator().layout();
    ScenarioScripter scripter(&system.simulator());
    scripter.Shoplift(MakeEpc(1), layout.AreasByKind(AreaKind::kShelf)[0],
                      layout.FindAreaByKind(AreaKind::kExit), /*start=*/1);
    scripter.Purchase(MakeEpc(2), layout.AreasByKind(AreaKind::kShelf)[0],
                      layout.FindAreaByKind(AreaKind::kCounter),
                      layout.FindAreaByKind(AreaKind::kExit), /*start=*/2);
    system.RunUntil(20);
    system.Flush();
    return lines;
  };

  auto serial = run(1);
  ASSERT_GE(serial.size(), 2u);  // both queries alert on the thief
  auto sharded = run(4);

  // Per-query output is identical; the two queries run on different hosts
  // under sharding (runtime merge vs serial engine), so only per-query
  // streams are order-comparable.
  auto only = [](const std::vector<std::string>& lines, bool hybrid) {
    std::vector<std::string> out;
    for (const auto& line : lines) {
      if ((line.find("_retrieveLocation") != std::string::npos) == hybrid) {
        out.push_back(line);
      }
    }
    return out;
  };
  EXPECT_EQ(only(serial, false), only(sharded, false));
  EXPECT_EQ(only(serial, true), only(sharded, true));
}

TEST_F(SystemTest, ShardedSystemKeepsSerialOnlyQueriesOnEngine) {
  SystemConfig config = PerfectConfig();
  config.shard_count = 4;
  SaseSystem system(StoreLayout::RetailDemo(), config);
  ASSERT_NE(system.runtime(), nullptr);
  // Function-calling (hybrid stream+database) queries must fall back to the
  // serial engine; pure stream queries — default input or named FROM stream
  // — go to the runtime.
  ASSERT_TRUE(system
                  .RegisterMonitoringQuery(
                      "named-stream",
                      "FROM other EVENT SHELF_READING s RETURN s.TagId",
                      nullptr)
                  .ok());
  ASSERT_TRUE(
      system.RegisterMonitoringQuery("hybrid", kShopliftingQuery, nullptr)
          .ok());
  ASSERT_TRUE(system
                  .RegisterMonitoringQuery(
                      "pure", "EVENT SHELF_READING s RETURN s.TagId", nullptr)
                  .ok());
  EXPECT_EQ(system.engine().query_count(), 1u);
  EXPECT_EQ(system.runtime()->query_count(), 2u);
}

TEST_F(SystemTest, NamedStreamEventsReachRuntimeQueries) {
  SystemConfig config = PerfectConfig();
  config.shard_count = 4;
  SaseSystem system(StoreLayout::RetailDemo(), config);
  ASSERT_NE(system.runtime(), nullptr);
  std::vector<std::string> lines;
  ASSERT_TRUE(system
                  .RegisterMonitoringQuery(
                      "belt-watch",
                      "FROM belt EVENT SHELF_READING s RETURN s.TagId",
                      [&lines](const OutputRecord& r) {
                        lines.push_back(r.ToString());
                      })
                  .ok());
  EXPECT_EQ(system.runtime()->query_count(), 1u);
  EventBuilder b(system.catalog(), "SHELF_READING");
  auto event = b.Set("TagId", "TAG-BELT").Set("AreaId", 1).Build(5, 0);
  ASSERT_TRUE(event.ok());
  system.PublishStreamEvent("belt", event.value());
  system.runtime()->WaitIdle();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("TAG-BELT"), std::string::npos);
}

TEST_F(SystemTest, HonestPurchaseRaisesNoAlert) {
  AddDemoProducts();
  std::vector<OutputRecord> alerts;
  ASSERT_TRUE(system_
                  .RegisterMonitoringQuery(
                      "shoplifting", kShopliftingQuery,
                      [&alerts](const OutputRecord& r) { alerts.push_back(r); })
                  .ok());
  const StoreLayout& layout = system_.simulator().layout();
  ScenarioScripter scripter(&system_.simulator());
  scripter.Purchase(MakeEpc(2), layout.AreasByKind(AreaKind::kShelf)[0],
                    layout.FindAreaByKind(AreaKind::kCounter),
                    layout.FindAreaByKind(AreaKind::kExit), /*start=*/1);
  system_.RunUntil(15);
  system_.Flush();
  EXPECT_TRUE(alerts.empty());
}

}  // namespace
}  // namespace sase
