#include "db/table.h"

#include <gtest/gtest.h>

#include "db/database.h"

namespace sase {
namespace db {
namespace {

Table MakeItems() {
  return Table("items", {{"TagId", ValueType::kString},
                         {"AreaId", ValueType::kInt},
                         {"Price", ValueType::kDouble}});
}

TEST(TableTest, InsertAndGet) {
  Table table = MakeItems();
  auto id = table.Insert({Value("T1"), Value(3), Value(9.99)});
  ASSERT_TRUE(id.ok());
  const Row* row = table.Get(id.value());
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[0].AsString(), "T1");
  EXPECT_EQ((*row)[1].AsInt(), 3);
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.Get(999), nullptr);
}

TEST(TableTest, InsertValidatesArityAndTypes) {
  Table table = MakeItems();
  EXPECT_FALSE(table.Insert({Value("T1")}).ok());                      // arity
  EXPECT_FALSE(table.Insert({Value(1), Value(3), Value(9.9)}).ok());   // type
  EXPECT_TRUE(table.Insert({Value("T"), Value(3), Value(2)}).ok());    // int->double ok
  EXPECT_TRUE(table.Insert({Value(), Value(), Value()}).ok());         // NULLs ok
}

TEST(TableTest, FindColumnCaseInsensitive) {
  Table table = MakeItems();
  EXPECT_EQ(table.FindColumn("tagid"), 0);
  EXPECT_EQ(table.FindColumn("PRICE"), 2);
  EXPECT_EQ(table.FindColumn("none"), -1);
}

TEST(TableTest, UpdateChangesValueAndValidates) {
  Table table = MakeItems();
  RowId id = table.Insert({Value("T"), Value(1), Value(1.0)}).value();
  ASSERT_TRUE(table.Update(id, 1, Value(9)).ok());
  EXPECT_EQ((*table.Get(id))[1].AsInt(), 9);
  EXPECT_FALSE(table.Update(id, 0, Value(5)).ok());    // type mismatch
  EXPECT_FALSE(table.Update(999, 0, Value("X")).ok()); // missing row
}

TEST(TableTest, EraseRemovesRow) {
  Table table = MakeItems();
  RowId id = table.Insert({Value("T"), Value(1), Value(1.0)}).value();
  EXPECT_TRUE(table.Erase(id));
  EXPECT_EQ(table.Get(id), nullptr);
  EXPECT_FALSE(table.Erase(id));
  EXPECT_EQ(table.row_count(), 0u);
}

TEST(TableTest, ScanVisitsInRowIdOrderAndStops) {
  Table table = MakeItems();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table.Insert({Value("T" + std::to_string(i)), Value(i), Value(0.0)}).ok());
  }
  std::vector<int64_t> areas;
  table.Scan([&](RowId, const Row& row) {
    areas.push_back(row[1].AsInt());
    return areas.size() < 3;  // stop early
  });
  EXPECT_EQ(areas, (std::vector<int64_t>{0, 1, 2}));
}

TEST(TableTest, IndexLookup) {
  Table table = MakeItems();
  RowId a = table.Insert({Value("T1"), Value(1), Value(0.0)}).value();
  RowId b = table.Insert({Value("T2"), Value(2), Value(0.0)}).value();
  RowId c = table.Insert({Value("T1"), Value(3), Value(0.0)}).value();
  ASSERT_TRUE(table.CreateIndex("TagId").ok());
  auto hits = table.Lookup(0, Value("T1"));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value(), (std::vector<RowId>{a, c}));
  EXPECT_TRUE(table.Lookup(0, Value("T9")).value().empty());
  EXPECT_FALSE(table.Lookup(1, Value(2)).ok());  // no index on AreaId
  (void)b;
}

TEST(TableTest, IndexBuiltOverExistingRowsAndMaintained) {
  Table table = MakeItems();
  RowId a = table.Insert({Value("T1"), Value(1), Value(0.0)}).value();
  ASSERT_TRUE(table.CreateIndex("TagId").ok());  // built after insert
  EXPECT_EQ(table.Lookup(0, Value("T1")).value().size(), 1u);

  // Update moves the row between index buckets.
  ASSERT_TRUE(table.Update(a, 0, Value("T2")).ok());
  EXPECT_TRUE(table.Lookup(0, Value("T1")).value().empty());
  EXPECT_EQ(table.Lookup(0, Value("T2")).value().size(), 1u);

  // Erase removes from the index.
  table.Erase(a);
  EXPECT_TRUE(table.Lookup(0, Value("T2")).value().empty());
}

TEST(TableTest, CreateIndexIdempotentAndValidates) {
  Table table = MakeItems();
  EXPECT_TRUE(table.CreateIndex("TagId").ok());
  EXPECT_TRUE(table.CreateIndex("TagId").ok());
  EXPECT_FALSE(table.CreateIndex("nope").ok());
}

TEST(DatabaseTest, CreateAndGetTables) {
  Database database;
  auto table = database.CreateTable("t1", {{"A", ValueType::kInt}});
  ASSERT_TRUE(table.ok());
  EXPECT_NE(database.GetTable("t1"), nullptr);
  EXPECT_NE(database.GetTable("T1"), nullptr);  // case-insensitive
  EXPECT_EQ(database.GetTable("t2"), nullptr);
  EXPECT_EQ(database.table_count(), 1u);
}

TEST(DatabaseTest, DuplicateAndInvalidTables) {
  Database database;
  ASSERT_TRUE(database.CreateTable("t", {{"A", ValueType::kInt}}).ok());
  EXPECT_FALSE(database.CreateTable("T", {{"B", ValueType::kInt}}).ok());
  EXPECT_FALSE(database.CreateTable("empty", {}).ok());
  EXPECT_FALSE(
      database.CreateTable("dup", {{"A", ValueType::kInt}, {"a", ValueType::kInt}})
          .ok());
}

TEST(DatabaseTest, DropTable) {
  Database database;
  ASSERT_TRUE(database.CreateTable("t", {{"A", ValueType::kInt}}).ok());
  EXPECT_TRUE(database.DropTable("T").ok());
  EXPECT_EQ(database.GetTable("t"), nullptr);
  EXPECT_FALSE(database.DropTable("t").ok());
}

TEST(DatabaseTest, TableNames) {
  Database database;
  ASSERT_TRUE(database.CreateTable("bbb", {{"A", ValueType::kInt}}).ok());
  ASSERT_TRUE(database.CreateTable("aaa", {{"A", ValueType::kInt}}).ok());
  auto names = database.TableNames();
  EXPECT_EQ(names, (std::vector<std::string>{"aaa", "bbb"}));  // sorted by key
}

}  // namespace
}  // namespace db
}  // namespace sase
