#ifndef SASE_TESTS_TEST_UTIL_H_
#define SASE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/event.h"
#include "engine/query_engine.h"
#include "engine/reference_matcher.h"
#include "query/analyzer.h"
#include "query/parser.h"

namespace sase {
namespace testing {

/// Builds hand-crafted event streams over the retail demo catalog.
class StreamBuilder {
 public:
  explicit StreamBuilder(const Catalog* catalog) : catalog_(catalog) {}

  /// Appends one event; timestamps may repeat but must not decrease.
  StreamBuilder& Add(const std::string& type, Timestamp ts,
                     const std::string& tag, int64_t area = 0,
                     const std::string& product = "P") {
    EventBuilder builder(*catalog_, type);
    builder.Set("TagId", tag).Set("AreaId", area).Set("ProductName", product);
    auto event = builder.Build(ts, seq_++);
    EXPECT_TRUE(event.ok()) << event.status().ToString();
    events_.push_back(std::move(event).value());
    return *this;
  }

  const std::vector<EventPtr>& events() const { return events_; }

 private:
  const Catalog* catalog_;
  SequenceNumber seq_ = 0;
  std::vector<EventPtr> events_;
};

/// Parses + analyzes or fails the test.
inline AnalyzedQuery MustAnalyze(const Catalog& catalog, const std::string& text,
                                 TimeConfig time_config = {}) {
  auto parsed = Parser::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  Analyzer analyzer(&catalog, time_config);
  auto analyzed = analyzer.Analyze(std::move(parsed).value());
  EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  return std::move(analyzed).value();
}

/// Runs `text` (which must have no RETURN clause) over `events` through a
/// QueryEngine and returns the default-projection records, rendered and
/// sorted. The multiset of rendered records identifies the match set.
inline std::vector<std::string> RunEngine(const Catalog& catalog,
                                          const std::string& text,
                                          const std::vector<EventPtr>& events,
                                          PlanOptions options = {},
                                          TimeConfig time_config = {}) {
  QueryEngine engine(&catalog, time_config);
  std::vector<std::string> out;
  auto id = engine.Register(
      text,
      [&out](const OutputRecord& record) { out.push_back(record.ToString()); },
      options);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  for (const auto& event : events) engine.OnEvent(event);
  engine.OnFlush();
  std::sort(out.begin(), out.end());
  return out;
}

/// Renders a reference match exactly as Transformation's default projection
/// renders it, so engine and oracle outputs are string-comparable.
inline std::string RenderDefaultRecord(const Match& match,
                                       const AnalyzedQuery& query,
                                       const Catalog& catalog) {
  OutputRecord record;
  record.stream =
      query.parsed.output_name.empty() ? "out" : query.parsed.output_name;
  record.timestamp = match.last_ts;
  for (int slot : query.positive_slots) {
    const VarInfo& var = query.vars[static_cast<size_t>(slot)];
    const EventSchema& schema = catalog.schema(var.type_id);
    const EventPtr& event = match.bindings[static_cast<size_t>(slot)];
    for (size_t i = 0; i < schema.attribute_count(); ++i) {
      record.names.push_back(var.name + "_" + schema.attributes()[i].name);
      record.values.push_back(event->attribute(static_cast<AttrIndex>(i)));
    }
    record.names.push_back(var.name + "_Timestamp");
    record.values.push_back(Value(event->timestamp()));
  }
  return record.ToString();
}

/// Runs the brute-force oracle and renders its matches like RunEngine.
inline std::vector<std::string> RunReference(const Catalog& catalog,
                                             const std::string& text,
                                             const std::vector<EventPtr>& events,
                                             TimeConfig time_config = {}) {
  AnalyzedQuery analyzed = MustAnalyze(catalog, text, time_config);
  FunctionRegistry functions;
  functions.RegisterCommon();
  ReferenceMatcher reference(&analyzed, &functions);
  auto matches = reference.FindMatches(events);
  EXPECT_TRUE(matches.ok()) << matches.status().ToString();
  std::vector<std::string> out;
  for (const Match& match : matches.value()) {
    out.push_back(RenderDefaultRecord(match, analyzed, catalog));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace testing
}  // namespace sase

#endif  // SASE_TESTS_TEST_UTIL_H_
