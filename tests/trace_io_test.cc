#include "rfid/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "cleaning/pipeline.h"
#include "rfid/simulator.h"

namespace sase {
namespace {

RawReading MakeReading(int64_t t, int reader, const std::string& tag,
                       const std::string& container = "",
                       bool synthesized = false) {
  RawReading reading;
  reading.raw_time = t;
  reading.reader_id = reader;
  reading.tag_id = tag;
  reading.container_id = container;
  reading.synthesized = synthesized;
  return reading;
}

TEST(TraceIoTest, SaveLoadRoundTrip) {
  std::vector<RawReading> readings = {
      MakeReading(100, 0, MakeEpc(1)),
      MakeReading(200, 1, MakeEpc(2), "CONT5"),
      MakeReading(200, 1, MakeEpc(2), "", true),
  };
  std::ostringstream out;
  ASSERT_TRUE(SaveTrace(readings, &out).ok());
  std::istringstream in(out.str());
  auto loaded = LoadTrace(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value()[0].raw_time, 100);
  EXPECT_EQ(loaded.value()[1].container_id, "CONT5");
  EXPECT_TRUE(loaded.value()[2].synthesized);
  EXPECT_EQ(loaded.value()[2].tag_id, MakeEpc(2));
}

TEST(TraceIoTest, RecorderCapturesSimulatorOutput) {
  std::ostringstream out;
  TraceRecorder recorder(&out);
  StoreLayout layout = StoreLayout::RetailDemo();
  RetailSimulator sim(layout, NoiseModel::Perfect(), 1, 1);
  sim.set_sink(&recorder);
  sim.AddItem(TagInfo{MakeEpc(1), "P", "", true});
  sim.Place(MakeEpc(1), 0);
  sim.Step();
  sim.Step();
  EXPECT_EQ(recorder.recorded(), 2u);
  std::istringstream in(out.str());
  auto loaded = LoadTrace(&in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
}

TEST(TraceIoTest, ReplayFeedsCleaningPipelineIdentically) {
  // Record a noisy run, then replay it twice through cleaning: the two
  // event streams must be identical — the reproducibility property traces
  // exist for.
  StoreLayout layout = StoreLayout::RetailDemo();
  RetailSimulator sim(layout, NoiseModel{.miss_rate = 0.2,
                                         .truncation_rate = 0.05,
                                         .spurious_rate = 0.05,
                                         .duplicate_rate = 0.1},
                      /*seed=*/99, 1);
  std::ostringstream out;
  TraceRecorder recorder(&out);
  sim.set_sink(&recorder);
  for (int i = 0; i < 20; ++i) {
    sim.AddItem(TagInfo{MakeEpc(i), "P", "", true});
    sim.Place(MakeEpc(i), i % 4);
  }
  sim.RunUntil(30);

  std::istringstream in(out.str());
  auto trace = LoadTrace(&in);
  ASSERT_TRUE(trace.ok());

  Catalog catalog = Catalog::RetailDemo();
  auto run_cleaning = [&](const std::vector<RawReading>& readings) {
    VectorSink sink;
    CleaningPipeline::Config config;
    config.anomaly.valid_readers = {0, 1, 2, 3};
    config.dedup.reader_to_area = layout.ReaderToArea();
    config.generation.area_to_event_type = layout.AreaToEventType();
    CleaningPipeline pipeline(config, &catalog, nullptr, &sink);
    ReplayTrace(readings, &pipeline);
    std::vector<std::string> rendered;
    for (const auto& event : sink.events()) {
      rendered.push_back(event->ToString(catalog));
    }
    return rendered;
  };
  auto first = run_cleaning(trace.value());
  auto second = run_cleaning(trace.value());
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(TraceIoTest, HeaderIsOptionalOnLoad) {
  std::istringstream in("5,1,TAG,CONT,0\n6,2,TAG2,,1\n");
  auto loaded = LoadTrace(&in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].container_id, "CONT");
}

TEST(TraceIoTest, MalformedLinesRejected) {
  auto load = [](const std::string& text) {
    std::istringstream in(text);
    return LoadTrace(&in);
  };
  EXPECT_FALSE(load("1,2,TAG\n").ok());              // too few fields
  EXPECT_FALSE(load("x,2,TAG,,0\n").ok());           // bad time
  EXPECT_FALSE(load("1,y,TAG,,0\n").ok());           // bad reader
  EXPECT_FALSE(load("1,2,TAG,,maybe\n").ok());       // bad flag
  EXPECT_TRUE(load("").ok());                        // empty trace is fine
}

TEST(TraceIoTest, UnsafeIdsRejected) {
  std::vector<RawReading> bad = {MakeReading(1, 0, "TAG,WITH,COMMAS")};
  std::ostringstream out;
  EXPECT_FALSE(SaveTrace(bad, &out).ok());

  std::ostringstream rec_out;
  TraceRecorder recorder(&rec_out);
  recorder.OnReading(bad[0]);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.rejected(), 1u);
}

TEST(TraceIoTest, FileRoundTrip) {
  std::vector<RawReading> readings = {MakeReading(1, 0, MakeEpc(9))};
  std::string path = ::testing::TempDir() + "/sase_trace_test.csv";
  ASSERT_TRUE(SaveTraceToFile(readings, path).ok());
  auto loaded = LoadTraceFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 1u);
  EXPECT_FALSE(LoadTraceFromFile("/no/such/file.csv").ok());
}

}  // namespace
}  // namespace sase
