#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sase {
namespace obs {
namespace {

TEST(MonotonicNsTest, NeverGoesBackwards) {
  uint64_t a = MonotonicNs();
  uint64_t b = MonotonicNs();
  EXPECT_GE(b, a);
  EXPECT_GT(a, 0u);
}

TEST(TraceCollectorTest, DisabledSamplesNothing) {
  TraceCollector tracer;
  EXPECT_FALSE(tracer.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(tracer.MaybeSample(), 0u);
}

TEST(TraceCollectorTest, SamplesOneInN) {
  TraceCollector tracer;
  tracer.SetSampling(10);
  EXPECT_TRUE(tracer.enabled());
  EXPECT_EQ(tracer.sample_every(), 10u);
  int sampled = 0;
  uint64_t last_id = 0;
  for (int i = 0; i < 100; ++i) {
    uint64_t id = tracer.MaybeSample();
    if (id != 0) {
      ++sampled;
      EXPECT_GT(id, last_id);  // fresh ids, strictly increasing
      last_id = id;
    }
  }
  EXPECT_EQ(sampled, 10);
}

TEST(TraceCollectorTest, SampleEveryOneTracesEverything) {
  TraceCollector tracer;
  tracer.SetSampling(1);
  for (int i = 0; i < 5; ++i) EXPECT_NE(tracer.MaybeSample(), 0u);
}

TEST(TraceCollectorTest, ZeroTraceIdSpansAreDropped) {
  TraceCollector tracer;
  tracer.AddSpan(0, "ingest", "ingest", 100, 200);
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(TraceCollectorTest, CollectsAndClearsSpans) {
  TraceCollector tracer;
  tracer.AddSpan(1, "ingest", "ingest", 100, 250, 7);
  tracer.AddSpan(1, "operator", "shard-0", 150, 200);
  ASSERT_EQ(tracer.span_count(), 2u);
  std::vector<TraceSpan> spans = tracer.Spans();
  EXPECT_EQ(spans[0].trace_id, 1u);
  EXPECT_STREQ(spans[0].name, "ingest");
  EXPECT_EQ(spans[0].lane, "ingest");
  EXPECT_EQ(spans[0].start_ns, 100u);
  EXPECT_EQ(spans[0].dur_ns, 150u);
  EXPECT_EQ(spans[0].global, 7u);
  tracer.Clear();
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(TraceCollectorTest, BackwardsEndClampsDurationToZero) {
  TraceCollector tracer;
  tracer.AddSpan(1, "emit", "dispatcher", 500, 400);
  EXPECT_EQ(tracer.Spans()[0].dur_ns, 0u);
}

TEST(TraceCollectorTest, CurrentSlotAndExternalSampler) {
  TraceCollector tracer;
  EXPECT_FALSE(tracer.external_sampler());
  tracer.SetExternalSampler(true);
  EXPECT_TRUE(tracer.external_sampler());
  EXPECT_EQ(tracer.current(), 0u);
  tracer.SetCurrent(42);
  EXPECT_EQ(tracer.current(), 42u);
  tracer.SetCurrent(0);
  EXPECT_EQ(tracer.current(), 0u);
}

TEST(TraceCollectorTest, ToJsonShape) {
  TraceCollector tracer;
  // Absolute timestamps far from zero: the dump must normalize to the
  // earliest span.
  tracer.AddSpan(3, "ingest", "ingest", 1'000'000'000, 1'000'050'000);
  tracer.AddSpan(3, "operator", "shard-1", 1'000'010'000, 1'000'020'000, 9);
  std::string json = tracer.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Thread-name metadata per lane.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ingest\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard-1\""), std::string::npos);
  // Complete events in microseconds, normalized to the earliest start.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":50.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":10.000"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":3"), std::string::npos);
  EXPECT_NE(json.find("\"global\":9"), std::string::npos);
}

TEST(TraceCollectorTest, EmptyJsonIsStillValid) {
  TraceCollector tracer;
  EXPECT_EQ(tracer.ToJson().find("{\"traceEvents\":["), 0u);
}

TEST(TraceCollectorTest, DumpJsonWritesFile) {
  TraceCollector tracer;
  tracer.AddSpan(1, "ingest", "ingest", 10, 20);
  std::string path = ::testing::TempDir() + "trace_test_dump.json";
  ASSERT_TRUE(tracer.DumpJson(path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), tracer.ToJson());
  std::remove(path.c_str());
  EXPECT_FALSE(tracer.DumpJson("/nonexistent-dir/trace.json").ok());
}

}  // namespace
}  // namespace obs
}  // namespace sase
