#include "db/track_trace.h"

#include <gtest/gtest.h>

#include "db/archiver.h"
#include "rfid/workload.h"

namespace sase {
namespace db {
namespace {

class TrackTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // T1: loading zone 100 -> backroom 101 -> shelf 0, boxes BOX1 -> BOX2.
    ASSERT_TRUE(archiver_.UpdateLocation("T1", 100, 10).ok());
    ASSERT_TRUE(archiver_.UpdateContainment("T1", "BOX1", 10).ok());
    ASSERT_TRUE(archiver_.UpdateLocation("T1", 101, 20).ok());
    ASSERT_TRUE(archiver_.UpdateContainment("T1", "BOX2", 25).ok());
    ASSERT_TRUE(archiver_.UpdateLocation("T1", 0, 30).ok());
    // T2 stays in the backroom.
    ASSERT_TRUE(archiver_.UpdateLocation("T2", 101, 15).ok());
  }

  Database database_;
  Archiver archiver_{&database_};
};

TEST_F(TrackTraceTest, CurrentLocation) {
  TrackTrace trace(&database_);
  auto current = trace.CurrentLocation("T1");
  ASSERT_TRUE(current.has_value());
  EXPECT_EQ(current->where.AsInt(), 0);
  EXPECT_EQ(current->time_in, 30);
  EXPECT_TRUE(current->current());
  EXPECT_FALSE(trace.CurrentLocation("UNKNOWN").has_value());
}

TEST_F(TrackTraceTest, LocationHistoryOrdered) {
  TrackTrace trace(&database_);
  auto history = trace.LocationHistory("T1");
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].where.AsInt(), 100);
  EXPECT_EQ(history[1].where.AsInt(), 101);
  EXPECT_EQ(history[2].where.AsInt(), 0);
  EXPECT_EQ(history[0].time_out, 20);
  EXPECT_EQ(history[1].time_out, 30);
  EXPECT_TRUE(history[2].current());
}

TEST_F(TrackTraceTest, MovementHistoryMergesLocationAndContainment) {
  TrackTrace trace(&database_);
  auto movement = trace.MovementHistory("T1");
  ASSERT_EQ(movement.size(), 5u);  // 3 locations + 2 containments
  // Time-ordered merge.
  Timestamp last = 0;
  int location_entries = 0, containment_entries = 0;
  for (const auto& entry : movement) {
    EXPECT_GE(entry.stay.time_in, last);
    last = entry.stay.time_in;
    if (entry.kind == MovementEntry::Kind::kLocation) ++location_entries;
    if (entry.kind == MovementEntry::Kind::kContainment) ++containment_entries;
  }
  EXPECT_EQ(location_entries, 3);
  EXPECT_EQ(containment_entries, 2);
  EXPECT_NE(movement[0].ToString().find("[10, 20)"), std::string::npos);
}

TEST_F(TrackTraceTest, CurrentContainment) {
  TrackTrace trace(&database_);
  auto box = trace.CurrentContainment("T1");
  ASSERT_TRUE(box.has_value());
  EXPECT_EQ(box->where.AsString(), "BOX2");
  EXPECT_FALSE(trace.CurrentContainment("T2").has_value());
}

TEST_F(TrackTraceTest, TagsInArea) {
  TrackTrace trace(&database_);
  auto backroom = trace.TagsInArea(101);
  EXPECT_EQ(backroom, (std::vector<std::string>{"T2"}));
  auto shelf = trace.TagsInArea(0);
  EXPECT_EQ(shelf, (std::vector<std::string>{"T1"}));
  EXPECT_TRUE(trace.TagsInArea(55).empty());
}

TEST_F(TrackTraceTest, EmptyDatabaseSafe) {
  Database empty;
  TrackTrace trace(&empty);  // tables absent entirely
  EXPECT_FALSE(trace.CurrentLocation("T").has_value());
  EXPECT_TRUE(trace.MovementHistory("T").empty());
  EXPECT_TRUE(trace.TagsInArea(1).empty());
}

TEST_F(TrackTraceTest, WarehouseWorkloadRoundTrip) {
  // §4: "track-and-trace queries over the Event Database pre-populated with
  // data simulating typical warehouse and retail store workloads."
  Catalog catalog = Catalog::RetailDemo();
  WarehouseConfig config;
  config.item_count = 30;
  WarehouseHistoryGenerator generator(&catalog, config);
  auto events = generator.Generate();

  // Feed every event through the archival rules.
  for (const auto& event : events) {
    const EventSchema& schema = catalog.schema(event->type());
    std::string tag = event->attribute(schema.FindAttribute("TagId")).AsString();
    int64_t area = event->attribute(schema.FindAttribute("AreaId")).AsInt();
    ASSERT_TRUE(archiver_.UpdateLocation(tag, area, event->timestamp()).ok());
    AttrIndex cont = schema.FindAttribute("ContainerId");
    if (cont != kInvalidAttr && !event->attribute(cont).is_null()) {
      ASSERT_TRUE(archiver_
                      .UpdateContainment(tag, event->attribute(cont).AsString(),
                                         event->timestamp())
                      .ok());
    }
  }

  TrackTrace trace(&database_);
  // Every item ends somewhere, with a consistent, gap-free history.
  for (int i = 0; i < 30; ++i) {
    std::string tag = MakeEpc(i);
    auto history = trace.LocationHistory(tag);
    ASSERT_GE(history.size(), 3u) << tag;
    for (size_t j = 0; j + 1 < history.size(); ++j) {
      EXPECT_EQ(history[j].time_out, history[j + 1].time_in) << tag;
      EXPECT_FALSE(history[j].current());
    }
    EXPECT_TRUE(history.back().current());
    EXPECT_TRUE(trace.CurrentLocation(tag).has_value());
    EXPECT_TRUE(trace.CurrentContainment(tag).has_value());
  }
}

}  // namespace
}  // namespace db
}  // namespace sase
