#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/time_util.h"

namespace sase {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::ParseError("bad token");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_EQ(status.message(), "bad token");
  EXPECT_EQ(status.ToString(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err(Status::NotFound("gone"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("TagId", "tagid"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToUpper("aBc1"), "ABC1");
  EXPECT_EQ(ToLower("aBc1"), "abc1");
}

TEST(StringUtilTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  EXPECT_EQ(parts, (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join(parts, "-"), "a-b--c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("_retrieveLocation", "_"));
  EXPECT_FALSE(StartsWith("retrieve", "_"));
}

TEST(StringUtilTest, FieldEscapingRoundTrips) {
  // The '|'-delimited field grammar shared by the database dump and the
  // checkpoint snapshot files.
  EXPECT_EQ(EscapeField("plain"), "plain");
  EXPECT_EQ(EscapeField("a|b\\c\nd"), "a\\pb\\\\c\\nd");
  for (const std::string& original :
       {std::string("a|b"), std::string("back\\slash"), std::string("nl\nnl"),
        std::string("\\p|\n\\"), std::string()}) {
    auto back = UnescapeField(EscapeField(original));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), original);
  }
  EXPECT_FALSE(UnescapeField("dangling\\").ok());
  EXPECT_FALSE(UnescapeField("bad\\q").ok());
}

TEST(TimeUtilTest, DurationToTicksUnits) {
  TimeConfig config;  // 1 tick per second
  EXPECT_EQ(DurationToTicks(12, "hours", config).value(), 12 * 3600);
  EXPECT_EQ(DurationToTicks(1, "hour", config).value(), 3600);
  EXPECT_EQ(DurationToTicks(30, "seconds", config).value(), 30);
  EXPECT_EQ(DurationToTicks(2, "days", config).value(), 2 * 86400);
  EXPECT_EQ(DurationToTicks(5, "minutes", config).value(), 300);
  EXPECT_FALSE(DurationToTicks(1, "fortnights", config).ok());
  EXPECT_FALSE(DurationToTicks(-1, "hours", config).ok());
}

TEST(TimeUtilTest, TicksPerSecondScaling) {
  TimeConfig config{.ticks_per_second = 10};
  EXPECT_EQ(DurationToTicks(1, "minute", config).value(), 600);
}

TEST(TimeUtilTest, ParseDuration) {
  TimeConfig config;
  EXPECT_EQ(ParseDuration("12 hours", config).value(), 43200);
  EXPECT_EQ(ParseDuration("500", config).value(), 500);  // bare ticks
  EXPECT_EQ(ParseDuration("  3 minutes ", config).value(), 180);
  EXPECT_FALSE(ParseDuration("hours", config).ok());
  EXPECT_FALSE(ParseDuration("", config).ok());
}

TEST(TimeUtilTest, FormatDuration) {
  TimeConfig config;
  EXPECT_EQ(FormatDuration(43200, config), "12 hours");
  EXPECT_EQ(FormatDuration(86400, config), "1 days");
  EXPECT_EQ(FormatDuration(90, config), "90 seconds");
  EXPECT_EQ(FormatDuration(120, config), "2 minutes");
}

TEST(RandomTest, DeterministicUnderSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RandomTest, UniformWithinBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, GeometricGapAtLeastOne) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.GeometricGap(3.0), 1);
  }
}

TEST(RandomTest, ZipfSkewsTowardsLowRanks) {
  Random rng(7);
  int64_t low = 0;
  const int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(100, 1.2) < 10) ++low;
  }
  // With s=1.2 the top-10 ranks should dominate well beyond uniform's 10%.
  EXPECT_GT(low, kDraws / 3);
}

TEST(RandomTest, HexStringWellFormed) {
  Random rng(7);
  std::string s = rng.HexString(24);
  EXPECT_EQ(s.size(), 24u);
  for (char c : s) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)));
  }
}

TEST(RandomTest, WeightedRespectsZeroWeights) {
  Random rng(7);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Weighted(weights), 1u);
  }
}

TEST(LoggingTest, WarningCounter) {
  Logger::Get().ResetCounters();
  Logger::Get().set_min_level(LogLevel::kError);  // keep test output quiet
  SASE_LOG_WARN << "something odd";
  EXPECT_EQ(Logger::Get().warning_count(), 1);
  Logger::Get().ResetCounters();
  Logger::Get().set_min_level(LogLevel::kInfo);
}

}  // namespace
}  // namespace sase
