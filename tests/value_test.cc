#include "core/value.h"

#include <gtest/gtest.h>

namespace sase {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value(int64_t{42}).type(), ValueType::kInt);
  EXPECT_EQ(Value(7).type(), ValueType::kInt);
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value("abc").type(), ValueType::kString);
  EXPECT_EQ(Value(std::string("abc")).type(), ValueType::kString);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).AsDouble(), 3.5);
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_EQ(Value("xyz").AsString(), "xyz");
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value(5).ToNumeric().value(), 5.0);
  EXPECT_DOUBLE_EQ(Value(2.5).ToNumeric().value(), 2.5);
  EXPECT_FALSE(Value("no").ToNumeric().ok());
  EXPECT_FALSE(Value().ToNumeric().ok());
}

TEST(ValueTest, EqualsAcrossNumericTypes) {
  EXPECT_TRUE(Value(1).Equals(Value(1.0)));
  EXPECT_TRUE(Value(1.0).Equals(Value(1)));
  EXPECT_FALSE(Value(1).Equals(Value(2.0)));
  EXPECT_FALSE(Value(1).Equals(Value("1")));
  EXPECT_TRUE(Value().Equals(Value()));
  EXPECT_FALSE(Value().Equals(Value(0)));
}

TEST(ValueTest, HashConsistentWithEquals) {
  EXPECT_EQ(Value(1).Hash(), Value(1.0).Hash());
  EXPECT_EQ(Value("tag").Hash(), Value(std::string("tag")).Hash());
}

TEST(ValueTest, CompareNumeric) {
  EXPECT_LT(Value(1).Compare(Value(2)).value(), 0);
  EXPECT_GT(Value(2.5).Compare(Value(2)).value(), 0);
  EXPECT_EQ(Value(2).Compare(Value(2.0)).value(), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value("a").Compare(Value("b")).value(), 0);
  EXPECT_EQ(Value("a").Compare(Value("a")).value(), 0);
  EXPECT_GT(Value("b").Compare(Value("a")).value(), 0);
}

TEST(ValueTest, CompareBools) {
  EXPECT_LT(Value(false).Compare(Value(true)).value(), 0);
  EXPECT_EQ(Value(true).Compare(Value(true)).value(), 0);
}

TEST(ValueTest, CompareIncompatibleTypesFails) {
  EXPECT_FALSE(Value("a").Compare(Value(1)).ok());
  EXPECT_FALSE(Value(true).Compare(Value(1)).ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(true).ToString(), "TRUE");
  EXPECT_EQ(Value(false).ToString(), "FALSE");
}

TEST(ValueTest, HashUsableInUnorderedContainers) {
  std::unordered_map<Value, int, ValueHash> map;
  map[Value("TAG1")] = 1;
  map[Value(7)] = 2;
  EXPECT_EQ(map.at(Value("TAG1")), 1);
  EXPECT_EQ(map.at(Value(7)), 2);
  // Numeric coercion: int64 7 and double 7.0 are the same key.
  EXPECT_EQ(map.count(Value(7.0)), 1u);
}

}  // namespace
}  // namespace sase
