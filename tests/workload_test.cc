#include "rfid/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "rfid/tag.h"

namespace sase {
namespace {

TEST(SyntheticStreamTest, GeneratesRequestedCountInOrder) {
  Catalog catalog = Catalog::RetailDemo();
  SyntheticConfig config;
  config.event_count = 500;
  config.tag_count = 10;
  SyntheticStreamGenerator generator(&catalog, config);
  auto events = generator.Generate();
  ASSERT_EQ(events.size(), 500u);
  Timestamp last = 0;
  for (const auto& event : events) {
    EXPECT_GE(event->timestamp(), last);
    last = event->timestamp();
  }
}

TEST(SyntheticStreamTest, DeterministicUnderSeed) {
  Catalog catalog = Catalog::RetailDemo();
  SyntheticConfig config;
  config.event_count = 100;
  config.seed = 5;
  auto a = SyntheticStreamGenerator(&catalog, config).Generate();
  auto b = SyntheticStreamGenerator(&catalog, config).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->type(), b[i]->type());
    EXPECT_EQ(a[i]->timestamp(), b[i]->timestamp());
    EXPECT_EQ(a[i]->attribute(0).AsString(), b[i]->attribute(0).AsString());
  }
}

TEST(SyntheticStreamTest, RespectsTypeWeights) {
  Catalog catalog = Catalog::RetailDemo();
  SyntheticConfig config;
  config.event_count = 2000;
  config.type_weights = {{"SHELF_READING", 1.0}};
  SyntheticStreamGenerator generator(&catalog, config);
  auto events = generator.Generate();
  EventTypeId shelf = catalog.FindType("SHELF_READING").value();
  for (const auto& event : events) {
    ASSERT_EQ(event->type(), shelf);
  }
}

TEST(SyntheticStreamTest, TagCardinalityBounded) {
  Catalog catalog = Catalog::RetailDemo();
  SyntheticConfig config;
  config.event_count = 1000;
  config.tag_count = 3;
  SyntheticStreamGenerator generator(&catalog, config);
  std::set<std::string> tags;
  for (const auto& event : generator.Generate()) {
    tags.insert(event->attribute(0).AsString());
  }
  EXPECT_LE(tags.size(), 3u);
}

TEST(SyntheticStreamTest, GenerateIntoSinkStreams) {
  Catalog catalog = Catalog::RetailDemo();
  SyntheticConfig config;
  config.event_count = 50;
  SyntheticStreamGenerator generator(&catalog, config);
  VectorSink sink;
  EXPECT_EQ(generator.GenerateInto(&sink), 50);
  EXPECT_EQ(sink.events().size(), 50u);
}

TEST(ScenarioScripterTest, ShopliftSchedulesShelfThenExit) {
  StoreLayout layout = StoreLayout::RetailDemo();
  RetailSimulator sim(layout, NoiseModel::Perfect(), 1, 1);
  ScenarioScripter scripter(&sim);
  sim.AddItem(TagInfo{MakeEpc(1), "Razor", "", true});
  int shelf = layout.AreasByKind(AreaKind::kShelf)[0];
  int exit = layout.FindAreaByKind(AreaKind::kExit);
  int64_t done = scripter.Shoplift(MakeEpc(1), shelf, exit, /*start=*/1);
  EXPECT_GT(done, 1);

  class Collector : public ReadingSink {
   public:
    void OnReading(const RawReading& r) override { readings.push_back(r); }
    std::vector<RawReading> readings;
  } collector;
  sim.set_sink(&collector);
  sim.RunUntil(done + 1);

  bool saw_shelf = false, saw_exit = false, saw_counter = false;
  for (const auto& reading : collector.readings) {
    if (reading.reader_id == shelf) saw_shelf = true;
    if (reading.reader_id == 3) saw_exit = true;
    if (reading.reader_id == 2) saw_counter = true;
  }
  EXPECT_TRUE(saw_shelf);
  EXPECT_TRUE(saw_exit);
  EXPECT_FALSE(saw_counter);  // shoplifters skip the counter
}

TEST(ScenarioScripterTest, PurchasePassesTheCounter) {
  StoreLayout layout = StoreLayout::RetailDemo();
  RetailSimulator sim(layout, NoiseModel::Perfect(), 1, 1);
  ScenarioScripter scripter(&sim);
  sim.AddItem(TagInfo{MakeEpc(1), "Soap", "", true});
  int shelf = layout.AreasByKind(AreaKind::kShelf)[0];
  int counter = layout.FindAreaByKind(AreaKind::kCounter);
  int exit = layout.FindAreaByKind(AreaKind::kExit);
  int64_t done = scripter.Purchase(MakeEpc(1), shelf, counter, exit, 1);

  class Collector : public ReadingSink {
   public:
    void OnReading(const RawReading& r) override { readings.push_back(r); }
    std::vector<RawReading> readings;
  } collector;
  sim.set_sink(&collector);
  sim.RunUntil(done + 1);
  bool saw_counter = false;
  for (const auto& reading : collector.readings) {
    if (reading.reader_id == 2) saw_counter = true;
  }
  EXPECT_TRUE(saw_counter);
}

TEST(WarehouseHistoryTest, LifeCycleStagesPresent) {
  Catalog catalog = Catalog::RetailDemo();
  WarehouseConfig config;
  config.item_count = 50;
  WarehouseHistoryGenerator generator(&catalog, config);
  auto events = generator.Generate();
  ASSERT_GE(events.size(), 200u);  // >= 4 stages per item

  // Stream order.
  Timestamp last = 0;
  for (const auto& event : events) {
    EXPECT_GE(event->timestamp(), last);
    last = event->timestamp();
  }

  // Every item passes LOAD -> UNLOAD -> BACKROOM -> SHELF.
  EventTypeId load = catalog.FindType("LOAD_READING").value();
  EventTypeId unload = catalog.FindType("UNLOAD_READING").value();
  EventTypeId backroom = catalog.FindType("BACKROOM_READING").value();
  EventTypeId shelf = catalog.FindType("SHELF_READING").value();
  std::map<std::string, std::set<EventTypeId>> stages;
  for (const auto& event : events) {
    stages[event->attribute(0).AsString()].insert(event->type());
  }
  EXPECT_EQ(stages.size(), 50u);
  for (const auto& [tag, seen] : stages) {
    EXPECT_TRUE(seen.count(load)) << tag;
    EXPECT_TRUE(seen.count(unload)) << tag;
    EXPECT_TRUE(seen.count(backroom)) << tag;
    EXPECT_TRUE(seen.count(shelf)) << tag;
  }

  // Container attribute present on LOAD events.
  for (const auto& event : events) {
    if (event->type() == load) {
      const EventSchema& schema = catalog.schema(load);
      AttrIndex cont = schema.FindAttribute("ContainerId");
      EXPECT_FALSE(event->attribute(cont).is_null());
    }
  }
}

TEST(WarehouseHistoryTest, DeterministicUnderSeed) {
  Catalog catalog = Catalog::RetailDemo();
  WarehouseConfig config;
  config.item_count = 20;
  auto a = WarehouseHistoryGenerator(&catalog, config).Generate();
  auto b = WarehouseHistoryGenerator(&catalog, config).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->timestamp(), b[i]->timestamp());
    EXPECT_EQ(a[i]->type(), b[i]->type());
  }
}

}  // namespace
}  // namespace sase
